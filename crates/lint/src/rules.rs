//! The rule engine: token-stream matchers for every lint rule, test-region
//! detection, and waiver handling.
//!
//! Rules fire on the token stream produced by [`crate::lexer`], never on raw
//! text, so patterns inside string literals and comments are invisible to
//! them. Code under `#[cfg(test)]` / `#[test]` (and whole files under
//! `tests/`, `benches/`, `examples/`) is exempt from every rule: the
//! contracts being enforced are about shipped library/binary code.
//!
//! A finding can be suppressed with an inline waiver comment on the same
//! line or the line directly above. The syntax is the marker `lint:`
//! immediately followed by `allow(<rule>): <justification>`; a waiver
//! without a justification is itself a `waiver-syntax` finding and
//! suppresses nothing, and a justified waiver that suppresses nothing is
//! reported as `stale-waiver` so dead suppressions cannot accumulate.

use crate::config::Config;
use crate::lexer::{self, is_float_literal, Comment, Token};

/// One lint violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

pub struct RuleInfo {
    pub id: &'static str,
    pub family: &'static str,
    pub summary: &'static str,
}

/// Every rule the engine knows, in report order. The two meta rules at the
/// end are always on and cannot be waived.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-iteration",
        family: "determinism",
        summary: "no HashMap/HashSet (or Fx variant) iteration; order is nondeterministic",
    },
    RuleInfo {
        id: "wall-clock",
        family: "determinism",
        summary: "no Instant::now/SystemTime::now outside observability/bench/server scope",
    },
    RuleInfo {
        id: "entropy-rng",
        family: "determinism",
        summary: "no entropy-seeded RNG construction (thread_rng/from_entropy/OsRng)",
    },
    RuleInfo {
        id: "panic",
        family: "panic-freedom",
        summary: "no unwrap/expect/panic!/unreachable!/todo! in the request and decode paths",
    },
    RuleInfo {
        id: "index",
        family: "panic-freedom",
        summary: "no unchecked slice/array indexing in the request and decode paths",
    },
    RuleInfo {
        id: "float-eq",
        family: "numeric-safety",
        summary: "no bare ==/!= against float literals",
    },
    RuleInfo {
        id: "narrowing-cast",
        family: "numeric-safety",
        summary: "no unchecked `as` casts to narrower integer/float types in sampler/codec code",
    },
    RuleInfo {
        id: "unsafe-forbid",
        family: "hygiene",
        summary: "every crate root must carry #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "debug-print",
        family: "hygiene",
        summary: "no dbg!/println!/print! in library code",
    },
    RuleInfo {
        id: "waiver-syntax",
        family: "meta",
        summary: "waivers must name a known rule and carry a justification",
    },
    RuleInfo {
        id: "stale-waiver",
        family: "meta",
        summary: "a waiver that suppresses nothing must be removed",
    },
];

fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

fn is_meta_rule(id: &str) -> bool {
    id == "waiver-syntax" || id == "stale-waiver"
}

/// How the file as a whole is classified, from its path alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// Library source: every rule applies (subject to `lint.toml` scoping).
    Library,
    /// Binary entry points (`src/bin/`, `main.rs`, `build.rs`): printing to
    /// stdout is their job, so `debug-print` is off; everything else applies.
    Binary,
    /// Test-only code: exempt from all rules.
    Test,
}

fn file_kind(rel_path: &str) -> FileKind {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let has = |name: &str| parts.contains(&name);
    if has("tests") || has("benches") || has("examples") || has("fixtures") {
        return FileKind::Test;
    }
    let file = parts.last().copied().unwrap_or_default();
    if has("bin") || file == "main.rs" || file == "build.rs" {
        return FileKind::Binary;
    }
    FileKind::Library
}

/// Analyze one source file and return its findings, waivers applied,
/// sorted by line then rule id.
pub fn analyze(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    if file_kind(rel_path) == FileKind::Test {
        return Vec::new();
    }
    let lexed = lexer::lex(source);
    let test_ranges = test_token_ranges(&lexed.tokens);
    let mut in_test = vec![false; lexed.tokens.len()];
    for &(start, end) in &test_ranges {
        for flag in &mut in_test[start..=end] {
            *flag = true;
        }
    }
    let test_lines: Vec<(u32, u32)> = test_ranges
        .iter()
        .map(|&(s, e)| (lexed.tokens[s].line, lexed.tokens[e].line))
        .collect();

    let mut cx = Cx {
        path: rel_path,
        kind: file_kind(rel_path),
        toks: &lexed.tokens,
        in_test: &in_test,
        findings: Vec::new(),
    };
    let on = |rule: &str| cfg.scope_for(rule).applies(rel_path);
    if on("hash-iteration") {
        cx.rule_hash_iteration();
    }
    if on("wall-clock") {
        cx.rule_wall_clock();
    }
    if on("entropy-rng") {
        cx.rule_entropy_rng();
    }
    if on("panic") {
        cx.rule_panic();
    }
    if on("index") {
        cx.rule_index();
    }
    if on("float-eq") {
        cx.rule_float_eq();
    }
    if on("narrowing-cast") {
        cx.rule_narrowing_cast();
    }
    if on("unsafe-forbid") {
        cx.rule_unsafe_forbid();
    }
    if on("debug-print") {
        cx.rule_debug_print();
    }
    let mut findings = cx.findings;
    apply_waivers(rel_path, &lexed.comments, &test_lines, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Token-index ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
/// items. Found by locating the attribute, skipping any further attributes,
/// and brace-matching the body that follows.
fn test_token_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_punct("#") && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let close = match matching(toks, i + 1, "[", "]") {
            Some(c) => c,
            None => break,
        };
        if attr_is_test(&toks[i + 2..close]) {
            // Skip over any attributes stacked after this one.
            let mut j = close + 1;
            while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
                match matching(toks, j + 1, "[", "]") {
                    Some(c) => j = c + 1,
                    None => break,
                }
            }
            // The guarded item's body is the first brace block before any
            // `;` (a `;` means a body-less item such as `mod tests;`).
            let mut k = j;
            while k < toks.len() && !toks[k].is_punct("{") && !toks[k].is_punct(";") {
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct("{") {
                let end = matching(toks, k, "{", "}").unwrap_or(toks.len() - 1);
                ranges.push((i, end));
            }
        }
        i = close + 1;
    }
    ranges
}

/// Whether an attribute token span marks test-only code. `test` anywhere in
/// the span counts, unless negated (`cfg(not(test))`).
fn attr_is_test(span: &[Token]) -> bool {
    span.iter().any(|t| t.is_ident("test")) && !span.iter().any(|t| t.is_ident("not"))
}

/// Index of the token closing the delimiter opened at `open_idx`.
fn matching(toks: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------------

struct Cx<'a> {
    path: &'a str,
    kind: FileKind,
    toks: &'a [Token],
    in_test: &'a [bool],
    findings: Vec<Finding>,
}

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

impl<'a> Cx<'a> {
    fn emit(&mut self, rule: &'static str, line: u32, message: String) {
        self.findings.push(Finding {
            path: self.path.to_string(),
            line,
            rule,
            message,
        });
    }

    fn ident(&self, i: usize) -> Option<&'a str> {
        let t = self.toks.get(i)?;
        t.is_ident_token().then_some(t.text.as_str())
    }

    fn p(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(s))
    }

    fn id(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_ident(s))
    }

    /// Positions of live (non-test) tokens.
    fn live(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.toks.len()).filter(|&i| !self.in_test[i])
    }

    /// Identifiers bound to hash-map/set values in this file, found via
    /// `name: HashMap<..>` (fields, params, typed lets) and
    /// `name = FxHashMap::default()`-shaped initialisers.
    fn hash_bound_names(&self) -> Vec<&'a str> {
        let mut names = Vec::new();
        for i in 0..self.toks.len() {
            let Some(ident) = self.ident(i) else { continue };
            if !HASH_TYPES.contains(&ident) {
                continue;
            }
            // Walk left over a `path::to::Type` prefix…
            let mut j = i;
            while j >= 2 && self.p(j - 1, "::") && self.ident(j - 2).is_some() {
                j -= 2;
            }
            // …and over reference/mutability adornments.
            while j >= 1
                && (self.p(j - 1, "&")
                    || self.id(j - 1, "mut")
                    || self
                        .toks
                        .get(j - 1)
                        .is_some_and(|t| t.kind == lexer::TokenKind::Lifetime))
            {
                j -= 1;
            }
            if j >= 2 && (self.p(j - 1, ":") || self.p(j - 1, "=")) {
                if let Some(name) = self.ident(j - 2) {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        names.dedup();
        names
    }

    fn rule_hash_iteration(&mut self) {
        let names = self.hash_bound_names();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in self.live() {
            let Some(ident) = self.ident(i) else { continue };
            // `map.iter()` / `.keys()` / … on a hash-bound name.
            if names.contains(&ident)
                && self.p(i + 1, ".")
                && self.ident(i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
                && self.p(i + 3, "(")
            {
                hits.push((
                    self.toks[i].line,
                    format!(
                        "`{}.{}()` iterates a hash container in nondeterministic order; \
                         use BTreeMap/BTreeSet or collect and sort",
                        ident,
                        self.toks[i + 2].text
                    ),
                ));
            }
            // `for x in <expr ending in a hash-bound name> {` (implicit
            // IntoIterator). Method-call forms are caught above.
            if self.id(i, "in") {
                let mut depth = 0i32;
                let mut last_ident: Option<usize> = None;
                for k in i + 1..self.toks.len() {
                    let t = &self.toks[k];
                    if t.is_punct("(") || t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct("{") {
                        break;
                    } else if depth == 0 && t.is_ident_token() {
                        last_ident = Some(k);
                    }
                    if t.is_punct(";") {
                        break; // not a for loop after all
                    }
                }
                if let Some(k) = last_ident {
                    let name = self.toks[k].text.as_str();
                    if names.contains(&name) && !self.p(k + 1, "(") {
                        hits.push((
                            self.toks[k].line,
                            format!(
                                "`for … in {name}` iterates a hash container in \
                                 nondeterministic order; use BTreeMap/BTreeSet or sort first"
                            ),
                        ));
                    }
                }
            }
        }
        for (line, msg) in hits {
            self.emit("hash-iteration", line, msg);
        }
    }

    fn rule_wall_clock(&mut self) {
        let mut hits = Vec::new();
        for i in self.live() {
            if (self.id(i, "Instant") || self.id(i, "SystemTime"))
                && self.p(i + 1, "::")
                && self.id(i + 2, "now")
            {
                hits.push((
                    self.toks[i].line,
                    format!(
                        "`{}::now()` reads the wall clock in deterministic code; \
                         route timing through srclda_obs or an allowed scope",
                        self.toks[i].text
                    ),
                ));
            }
        }
        for (line, msg) in hits {
            self.emit("wall-clock", line, msg);
        }
    }

    fn rule_entropy_rng(&mut self) {
        const ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "ThreadRng"];
        let mut hits = Vec::new();
        for i in self.live() {
            let Some(ident) = self.ident(i) else { continue };
            if ENTROPY.contains(&ident) {
                hits.push((
                    self.toks[i].line,
                    format!(
                        "`{ident}` seeds randomness from OS entropy, breaking the \
                         (seed, shards) reproducibility contract; derive from an explicit seed"
                    ),
                ));
            }
        }
        for (line, msg) in hits {
            self.emit("entropy-rng", line, msg);
        }
    }

    fn rule_panic(&mut self) {
        const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
        let mut hits = Vec::new();
        for i in self.live() {
            if self.p(i, ".")
                && (self.id(i + 1, "unwrap") || self.id(i + 1, "expect"))
                && self.p(i + 2, "(")
            {
                hits.push((
                    self.toks[i + 1].line,
                    format!(
                        "`.{}()` can panic and poison a pooled worker; \
                         return a typed error instead",
                        self.toks[i + 1].text
                    ),
                ));
            }
            if let Some(ident) = self.ident(i) {
                if PANIC_MACROS.contains(&ident) && self.p(i + 1, "!") {
                    hits.push((
                        self.toks[i].line,
                        format!(
                            "`{ident}!` panics in the request/decode path; \
                             return a typed error instead"
                        ),
                    ));
                }
            }
        }
        for (line, msg) in hits {
            self.emit("panic", line, msg);
        }
    }

    fn rule_index(&mut self) {
        let mut hits = Vec::new();
        for i in self.live() {
            if i == 0 || !self.p(i, "[") {
                continue;
            }
            // `expr[` is indexing when the `[` directly follows a value
            // expression; `[` after `# ! : ; = , ( { < &` etc. is an
            // attribute, array type, or array literal. Keywords lex as
            // idents but cannot end a value expression — `&mut [u8]` and
            // `for x in [..]` introduce slices/array literals, not indexing.
            const NON_EXPR_KEYWORDS: &[&str] = &[
                "mut", "in", "return", "break", "dyn", "as", "else", "match", "const", "ref",
                "move", "static", "impl", "where", "do", "yield", "let", "if", "while", "for",
                "loop",
            ];
            let prev = &self.toks[i - 1];
            let prev_is_keyword = NON_EXPR_KEYWORDS.iter().any(|k| prev.is_ident(k));
            let is_index = (prev.is_ident_token() && !prev_is_keyword)
                || prev.is_punct(")")
                || prev.is_punct("]");
            if is_index {
                hits.push((
                    self.toks[i].line,
                    "unchecked indexing can panic; use .get()/.first()/.split_at() \
                     or waive with a bounds argument"
                        .to_string(),
                ));
            }
        }
        for (line, msg) in hits {
            self.emit("index", line, msg);
        }
    }

    fn rule_float_eq(&mut self) {
        let mut hits = Vec::new();
        for i in self.live() {
            if !(self.p(i, "==") || self.p(i, "!=")) {
                continue;
            }
            let float_at = |j: &Option<&Token>| {
                j.is_some_and(|t| t.kind == lexer::TokenKind::Num && is_float_literal(&t.text))
            };
            let before = i.checked_sub(1).and_then(|j| self.toks.get(j));
            let after = self.toks.get(i + 1);
            if float_at(&before) || float_at(&after) {
                hits.push((
                    self.toks[i].line,
                    format!(
                        "bare `{}` against a float literal; compare with a tolerance, \
                         or waive if exact-representation equality is intended",
                        self.toks[i].text
                    ),
                ));
            }
        }
        for (line, msg) in hits {
            self.emit("float-eq", line, msg);
        }
    }

    fn rule_narrowing_cast(&mut self) {
        const NARROW: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
        let mut hits = Vec::new();
        for i in self.live() {
            if !self.id(i, "as") {
                continue;
            }
            if let Some(ty) = self.ident(i + 1) {
                if NARROW.contains(&ty) {
                    hits.push((
                        self.toks[i].line,
                        format!(
                            "`as {ty}` silently truncates out-of-range values; \
                             use a checked conversion or waive with a range argument"
                        ),
                    ));
                }
            }
        }
        for (line, msg) in hits {
            self.emit("narrowing-cast", line, msg);
        }
    }

    fn rule_unsafe_forbid(&mut self) {
        if !(self.path.ends_with("src/lib.rs") || self.path == "lib.rs") {
            return;
        }
        let present = (0..self.toks.len())
            .any(|i| self.id(i, "forbid") && self.p(i + 1, "(") && self.id(i + 2, "unsafe_code"));
        if !present {
            self.emit(
                "unsafe-forbid",
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }

    fn rule_debug_print(&mut self) {
        if self.kind == FileKind::Binary {
            return;
        }
        const PRINTS: [&str; 3] = ["dbg", "println", "print"];
        let mut hits = Vec::new();
        for i in self.live() {
            let Some(ident) = self.ident(i) else { continue };
            if PRINTS.contains(&ident) && self.p(i + 1, "!") {
                hits.push((
                    self.toks[i].line,
                    format!(
                        "`{ident}!` in library code writes to stdout; move output to a \
                         binary or the obs crate (stderr logging via eprintln is allowed)"
                    ),
                ));
            }
        }
        for (line, msg) in hits {
            self.emit("debug-print", line, msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

struct Waiver {
    rule: String,
    line: u32,
    used: bool,
}

/// Parse waivers out of `comments`, suppress matching findings, and append
/// the meta findings (`waiver-syntax`, `stale-waiver`).
fn apply_waivers(
    rel_path: &str,
    comments: &[Comment],
    test_lines: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    let in_test = |line: u32| test_lines.iter().any(|&(s, e)| line >= s && line <= e);
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    let mut bad = |line: u32, message: String| {
        meta.push(Finding {
            path: rel_path.to_string(),
            line,
            rule: "waiver-syntax",
            message,
        });
    };
    const MARKER: &str = "lint:allow";
    for c in comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        if in_test(c.line) {
            continue;
        }
        let rest = &c.text[pos + MARKER.len()..];
        let Some(inner) = rest.strip_prefix('(') else {
            bad(c.line, "waiver is missing the parenthesised rule id".into());
            continue;
        };
        let Some(close) = inner.find(')') else {
            bad(c.line, "waiver rule id is missing its closing `)`".into());
            continue;
        };
        let rule = inner[..close].trim();
        let tail = &inner[close + 1..];
        if !is_known_rule(rule) {
            bad(c.line, format!("waiver names unknown rule `{rule}`"));
            continue;
        }
        if is_meta_rule(rule) {
            bad(c.line, format!("meta rule `{rule}` cannot be waived"));
            continue;
        }
        let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.is_empty() {
            bad(
                c.line,
                format!("waiver for `{rule}` has no justification; explain why it is safe"),
            );
            continue;
        }
        waivers.push(Waiver {
            rule: rule.to_string(),
            line: c.line,
            used: false,
        });
    }

    // A waiver covers its own line (trailing comment) and the next line
    // (comment on its own line above the code).
    findings.retain(|f| {
        let mut suppressed = false;
        for w in &mut waivers {
            if w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line) {
                w.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for w in &waivers {
        if !w.used {
            meta.push(Finding {
                path: rel_path.to_string(),
                line: w.line,
                rule: "stale-waiver",
                message: format!("waiver for `{}` suppresses nothing here; remove it", w.rule),
            });
        }
    }
    findings.extend(meta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        analyze(path, src, &Config::default())
    }

    fn rules_of(fs: &[Finding]) -> Vec<&str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_iteration_on_fields_lets_and_for_loops() {
        let src = r#"
            struct S { map: FxHashMap<u32, u32> }
            impl S {
                fn a(&self) -> Vec<u32> { self.map.keys().copied().collect() }
                fn b(&self) {
                    for (k, v) in &self.map {}
                }
            }
            fn c() {
                let m = std::collections::HashMap::new();
                for x in m.iter() {}
            }
            fn fine() {
                let v: Vec<u32> = Vec::new();
                for x in &v {}
                let b: BTreeMap<u32, u32> = BTreeMap::new();
                for x in &b {}
            }
        "#;
        let fs = run("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["hash-iteration"; 3], "{fs:?}");
        assert_eq!(fs[0].line, 4);
        assert_eq!(fs[1].line, 6);
        assert_eq!(fs[2].line, 11);
    }

    #[test]
    fn hash_lookup_without_iteration_is_fine() {
        let src = r#"
            struct S { map: FxHashMap<u32, u32> }
            impl S {
                fn get(&self, k: u32) -> Option<&u32> { self.map.get(&k) }
                fn has(&self, k: u32) -> bool { self.map.contains_key(&k) }
            }
        "#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_and_entropy() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }";
        let fs = run("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["entropy-rng", "wall-clock"]);
    }

    #[test]
    fn panic_family() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("msg");
                if a > b { panic!("boom") }
                a.checked_add(b).unwrap_or(0)
            }
        "#;
        let fs = run("crates/serve/src/server/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["panic"; 3], "{fs:?}");
        assert_eq!(
            fs.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "unwrap_or must not be flagged"
        );
    }

    #[test]
    fn indexing_detection() {
        let src = r#"
            fn f(bytes: &[u8], i: usize) -> u8 {
                let a = bytes[i];
                let b = &bytes[..4];
                let c: [u8; 2] = [0, 1];
                let d = c.get(0);
                a
            }
            #[derive(Clone)]
            struct S;
        "#;
        let fs = run("crates/serve/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["index", "index"], "{fs:?}");
        assert_eq!(
            fs.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![3, 4],
            "array type/literal and attributes must not be flagged"
        );
    }

    #[test]
    fn keyword_brackets_are_not_indexing() {
        // Keywords lex as idents but introduce slice types, array literals,
        // or array patterns — none of these can panic.
        let src = r#"
            fn f(buf: &mut [u8]) -> u8 {
                let [first] = [buf.first().copied().unwrap_or(0)];
                for x in [1u8, 2, 3] {
                    let _ = x;
                }
                first
            }
        "#;
        let fs = run("crates/serve/src/x.rs", src);
        assert_eq!(rules_of(&fs), Vec::<&str>::new(), "{fs:?}");
    }

    #[test]
    fn float_eq_and_narrowing() {
        let src = r#"
            fn f(x: f64, n: usize) -> bool {
                let t = n as u32;
                let w = n as u64;
                x == 0.0 && t > 0 && w > 0 && n != 3
            }
        "#;
        let fs = run("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["narrowing-cast", "float-eq"], "{fs:?}");
        assert_eq!(fs[0].line, 3);
        assert_eq!(fs[1].line, 5);
    }

    #[test]
    fn unsafe_forbid_only_on_crate_roots() {
        let missing = "pub fn f() {}";
        let present = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert_eq!(
            rules_of(&run("crates/core/src/lib.rs", missing)),
            vec!["unsafe-forbid"]
        );
        assert!(run("crates/core/src/lib.rs", present).is_empty());
        assert!(run("crates/core/src/other.rs", missing).is_empty());
    }

    #[test]
    fn debug_print_in_lib_not_bin() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"err ok\"); }";
        assert_eq!(
            rules_of(&run("crates/core/src/x.rs", src)),
            vec!["debug-print"]
        );
        assert!(run("crates/bench/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
            fn lib_code(x: Option<u32>) -> Option<u32> { x }

            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let v = Some(1).unwrap();
                    let m: FxHashMap<u32, u32> = FxHashMap::default();
                    for x in m.iter() {}
                    println!("{v}");
                }
            }
        "#;
        assert!(run("crates/serve/src/server/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = r#"
            #[cfg(not(test))]
            fn f(x: Option<u32>) -> u32 { x.unwrap() }
        "#;
        assert_eq!(
            rules_of(&run("crates/serve/src/server/x.rs", src)),
            vec!["panic"]
        );
    }

    #[test]
    fn test_directory_files_are_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run("crates/serve/tests/integration.rs", src).is_empty());
        assert!(run("crates/bench/benches/b.rs", src).is_empty());
        assert!(run("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn patterns_inside_strings_and_comments_do_not_fire() {
        let src = r#"
            fn f() -> &'static str {
                // describing x.unwrap() and Instant::now() here is fine
                "also fine: map.iter() and panic!"
            }
        "#;
        assert!(run("crates/serve/src/server/x.rs", src).is_empty());
    }

    #[test]
    fn justified_waiver_suppresses_same_line_and_line_above() {
        let trailing = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic): caller checked is_some\n";
        assert!(run("crates/serve/src/server/x.rs", trailing).is_empty());
        let above = "// lint:allow(panic): caller checked is_some\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(run("crates/serve/src/server/x.rs", above).is_empty());
    }

    #[test]
    fn unjustified_waiver_errors_and_does_not_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic)\n";
        let fs = run("crates/serve/src/server/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["panic", "waiver-syntax"], "{fs:?}");
    }

    #[test]
    fn stale_waiver_is_reported() {
        let src = "// lint:allow(panic): nothing panics below\nfn f() -> u32 { 1 }\n";
        let fs = run("crates/serve/src/server/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["stale-waiver"]);
    }

    #[test]
    fn waiver_for_unknown_or_meta_rule_errors() {
        let unknown = "fn f() {} // lint:allow(no-such-rule): because\n";
        let fs = run("crates/core/src/x.rs", unknown);
        assert_eq!(rules_of(&fs), vec!["waiver-syntax"]);
        let meta = "fn f() {} // lint:allow(stale-waiver): because\n";
        let fs = run("crates/core/src/x.rs", meta);
        assert_eq!(rules_of(&fs), vec!["waiver-syntax"]);
    }

    #[test]
    fn waiver_only_suppresses_its_own_rule() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(index): wrong rule\n";
        let fs = run("crates/serve/src/server/x.rs", src);
        // The panic finding survives and the index waiver is stale.
        assert_eq!(rules_of(&fs), vec!["panic", "stale-waiver"], "{fs:?}");
    }

    #[test]
    fn config_scoping_limits_rules() {
        let cfg = crate::config::parse("[rule.panic]\ninclude = [\"crates/serve/src/server\"]\n")
            .unwrap();
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_of(&analyze("crates/serve/src/server/x.rs", src, &cfg)),
            vec!["panic"]
        );
        assert!(analyze("crates/core/src/x.rs", src, &cfg).is_empty());
    }
}
