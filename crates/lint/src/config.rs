//! `lint.toml` loading: which files to scan and where each rule applies.
//!
//! The parser understands the small TOML subset the config actually uses —
//! `[section]` headers and `key = "string"` / `key = ["a", "b"]` pairs —
//! so the linter stays zero-dependency. Anything outside that subset is a
//! hard error: a config typo must fail the build, not silently widen or
//! narrow a rule's scope.

use std::collections::BTreeMap;
use std::fmt;

/// Path scoping for one rule: `include` / `exclude` are `/`-separated
/// relative-path prefixes. An empty `include` means "everywhere".
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    pub include: Vec<String>,
    pub exclude: Vec<String>,
}

impl RuleScope {
    /// Whether `rel_path` (normalized, `/`-separated) falls in scope.
    pub fn applies(&self, rel_path: &str) -> bool {
        let included =
            self.include.is_empty() || self.include.iter().any(|p| prefix_match(rel_path, p));
        included && !self.exclude.iter().any(|p| prefix_match(rel_path, p))
    }
}

/// Prefix match on path components: `crates/core` matches
/// `crates/core/src/lib.rs` but not `crates/corefoo/x.rs`. A pattern may
/// also name a file exactly.
fn prefix_match(rel_path: &str, pattern: &str) -> bool {
    let pattern = pattern.trim_end_matches('/');
    rel_path == pattern
        || (rel_path.len() > pattern.len()
            && rel_path.starts_with(pattern)
            && rel_path.as_bytes()[pattern.len()] == b'/')
}

#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (relative to the repo root) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the walk entirely.
    pub exclude: Vec<String>,
    /// Per-rule scoping, keyed by rule id. Rules without an entry run
    /// everywhere the walk reaches.
    pub rules: BTreeMap<String, RuleScope>,
}

impl Config {
    pub fn scope_for(&self, rule: &str) -> RuleScope {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Whether the walk should descend into / pick up `rel_path`.
    pub fn walk_includes(&self, rel_path: &str) -> bool {
        !self.exclude.iter().any(|p| prefix_match(rel_path, p))
    }
}

#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parse the TOML subset described in the module docs.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    enum Section {
        None,
        Files,
        Rule(String),
    }
    let mut cfg = Config::default();
    let mut section = Section::None;

    let lines: Vec<&str> = text.lines().collect();
    let mut idx = 0usize;
    while idx < lines.len() {
        let lineno = idx + 1;
        let mut line = strip_comment(lines[idx]).trim().to_string();
        // A `[` array may span lines; keep consuming until its `]`.
        while line.contains('[') && !line.starts_with('[') && !line.contains(']') {
            idx += 1;
            if idx >= lines.len() {
                return Err(err(lineno, "unterminated array"));
            }
            line.push(' ');
            line.push_str(strip_comment(lines[idx]).trim());
        }
        idx += 1;
        let line = line.as_str();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated section header"))?
                .trim();
            section = match header {
                "files" => Section::Files,
                _ => match header.strip_prefix("rule.") {
                    Some(rule) if !rule.is_empty() => {
                        let rule = rule.trim().to_string();
                        cfg.rules.entry(rule.clone()).or_default();
                        Section::Rule(rule)
                    }
                    _ => return Err(err(lineno, format!("unknown section [{header}]"))),
                },
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = key.trim();
        let items = parse_string_list(value.trim()).map_err(|m| err(lineno, m))?;
        match (&mut section, key) {
            (Section::Files, "roots") => cfg.roots = items,
            (Section::Files, "exclude") => cfg.exclude = items,
            (Section::Rule(rule), "include") => {
                cfg.rules.get_mut(rule.as_str()).unwrap().include = items
            }
            (Section::Rule(rule), "exclude") => {
                cfg.rules.get_mut(rule.as_str()).unwrap().exclude = items
            }
            (Section::None, _) => return Err(err(lineno, "key outside any section")),
            (_, other) => return Err(err(lineno, format!("unknown key `{other}`"))),
        }
    }
    Ok(cfg)
}

/// Strip a `#` comment, respecting `"` string delimiters.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `"a"` or `["a", "b"]` into a list of strings.
fn parse_string_list(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("unterminated array")?;
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(part)?);
        }
        Ok(out)
    } else {
        Ok(vec![parse_string(value)?])
    }
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_files_and_rule_sections() {
        let cfg = parse(
            r#"
            # scan scope
            [files]
            roots = ["crates", "src"]
            exclude = ["crates/lint/tests"]

            [rule.hash-iteration]
            include = ["crates/core", "crates/corpus"]
            exclude = ["crates/core/src/bench_helpers.rs"] # one file
            "#,
        )
        .unwrap();
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.exclude, vec!["crates/lint/tests"]);
        let scope = cfg.scope_for("hash-iteration");
        assert!(scope.applies("crates/core/src/counts.rs"));
        assert!(!scope.applies("crates/core/src/bench_helpers.rs"));
        assert!(!scope.applies("crates/serve/src/lib.rs"));
        // No entry => applies everywhere.
        assert!(cfg.scope_for("panic").applies("anything/at/all.rs"));
    }

    #[test]
    fn prefix_match_respects_component_boundaries() {
        assert!(prefix_match("crates/core/src/lib.rs", "crates/core"));
        assert!(prefix_match("crates/core", "crates/core"));
        assert!(!prefix_match("crates/corefoo/lib.rs", "crates/core"));
        assert!(prefix_match("crates/core/src/lib.rs", "crates/core/"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("[files\nroots = []").is_err());
        assert!(parse("roots = [\"x\"]").is_err()); // key outside section
        assert!(parse("[files]\nroots = [unquoted]").is_err());
        assert!(parse("[mystery]\n").is_err());
        assert!(parse("[files]\nvolume = \"11\"").is_err());
    }

    #[test]
    fn multiline_arrays() {
        let cfg =
            parse("[files]\nroots = [\n  \"crates\", # comment\n  \"src\",\n]\nexclude = [\"x\"]")
                .unwrap();
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.exclude, vec!["x"]);
        assert!(parse("[files]\nroots = [\n  \"crates\",").is_err());
    }

    #[test]
    fn comments_and_strings_interact() {
        let cfg = parse("[files]\nroots = [\"has#hash\"] # trailing").unwrap();
        assert_eq!(cfg.roots, vec!["has#hash"]);
    }
}
