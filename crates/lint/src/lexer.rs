//! A small Rust lexer: just enough tokenization for line-oriented static
//! analysis.
//!
//! The scanner's one hard requirement is to never confuse *code* with
//! *text about code*: a rule that flags `unwrap()` must not fire on a
//! string literal or a comment that merely mentions it (this crate's own
//! rule table would otherwise light up like a scoreboard). So the lexer
//! fully understands comments (line, nested block), string literals
//! (plain, raw with `#` fences, byte), char literals vs. lifetimes, and
//! numeric literals — and throws away everything it doesn't need.
//!
//! Comments are kept (with line numbers) rather than skipped, because the
//! waiver syntax lives in them; see [`crate::rules`].

/// What a token is; the analysis only ever needs these five classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `let`, `as`).
    Ident,
    /// Numeric literal, verbatim (`0.5`, `1e-9`, `0xff`, `3f32`).
    Num,
    /// Punctuation; multi-char operators that matter to rules (`==`, `!=`,
    /// `::`, `->`, `=>`, `..`) are fused into one token.
    Punct,
    /// String literal of any flavor (contents discarded).
    Str,
    /// Char literal (contents discarded).
    Char,
    /// Lifetime (`'a`), kept distinct so it is never mistaken for a char.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Verbatim text for `Ident`, `Num`, and `Punct`; empty for literals.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// True when this token is any identifier.
    pub fn is_ident_token(&self) -> bool {
        self.kind == TokenKind::Ident
    }
}

/// One comment with its source line (1-based). `text` is the comment body
/// without the `//` / `/*` delimiters, trimmed.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Trimmed comment body.
    pub text: String,
}

/// The lexer's output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comments, for waiver scanning.
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Invalid input never panics — the scanner just
/// produces a best-effort token stream (a linter must survive any file the
/// compiler would reject).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

/// Two-char operators fused into single punct tokens (longest match
/// first at the call site; everything else is emitted one char at a time).
const TWO_CHAR_OPS: &[&str] = &["==", "!=", "::", "->", "=>", "..", "<=", ">="];

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'b' | b'r' if self.is_literal_prefix() => self.prefixed_literal(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: &str, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text: text.to_string(),
            line,
        });
    }

    /// Advance one byte, tracking newlines (used inside multi-line
    /// literals and comments).
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        if b == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(b)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start.min(self.pos)..self.pos])
            .trim()
            .to_string();
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1usize;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump();
                    end = self.pos;
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start.min(end)..end])
            .trim()
            .to_string();
        self.out.comments.push(Comment { line, text });
    }

    /// True when the `b`/`r` at the cursor starts a literal (`b"`, `r"`,
    /// `br"`, `rb"`, `r#"`, `b'`) rather than an identifier.
    fn is_literal_prefix(&self) -> bool {
        let mut i = 1usize;
        // At most two prefix letters (b, r in either order).
        if matches!(self.peek(i), Some(b'b' | b'r')) {
            i += 1;
        }
        let mut j = i;
        while self.peek(j) == Some(b'#') {
            j += 1;
        }
        match self.peek(j) {
            Some(b'"') => true,
            // b'x' byte char (raw chars don't exist; require no #).
            Some(b'\'') => j == i && self.peek(0) == Some(b'b'),
            _ => false,
        }
    }

    /// Lex `b"…"`, `r"…"`, `br#"…"#`, `b'x'` and friends.
    fn prefixed_literal(&mut self) {
        let line = self.line;
        let mut raw = false;
        while matches!(self.peek(0), Some(b'b' | b'r')) {
            raw |= self.peek(0) == Some(b'r');
            self.pos += 1;
        }
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.pos += 1;
        }
        match self.peek(0) {
            Some(b'"') if raw => {
                self.pos += 1;
                self.raw_string_body(fence);
                self.push(TokenKind::Str, "", line);
            }
            Some(b'"') => {
                self.pos += 1;
                self.escaped_string_body();
                self.push(TokenKind::Str, "", line);
            }
            Some(b'\'') => {
                self.pos += 1;
                self.char_body();
                self.push(TokenKind::Char, "", line);
            }
            _ => self.punct(), // stray prefix; treat as punctuation
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        self.escaped_string_body();
        self.push(TokenKind::Str, "", line);
    }

    fn escaped_string_body(&mut self) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Body of a raw string, consuming through `"` followed by `fence`
    /// `#` characters.
    fn raw_string_body(&mut self, fence: usize) {
        while let Some(b) = self.bump() {
            if b == b'"' {
                let mut matched = 0usize;
                while matched < fence && self.peek(0) == Some(b'#') {
                    self.pos += 1;
                    matched += 1;
                }
                if matched == fence {
                    return;
                }
            }
        }
    }

    /// `'a` (lifetime) vs `'a'` (char literal) vs `'\n'`.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Lifetime: quote, ident-start, ident-continue*, not followed by a
        // closing quote.
        if let Some(first) = self.peek(1) {
            if (first.is_ascii_alphabetic() || first == b'_') && first != b'\'' {
                let mut j = 2usize;
                while matches!(self.peek(j), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    j += 1;
                }
                if self.peek(j) != Some(b'\'') {
                    let text =
                        String::from_utf8_lossy(&self.bytes[self.pos..self.pos + j]).to_string();
                    self.pos += j;
                    self.push(TokenKind::Lifetime, &text, line);
                    return;
                }
            }
        }
        self.pos += 1;
        self.char_body();
        self.push(TokenKind::Char, "", line);
    }

    fn char_body(&mut self) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'\'' => return,
                _ => {}
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.pos += 2;
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
        } else {
            self.digits();
            // Fraction only when `.` is followed by a digit — `1..3` and
            // `1.max(2)` keep their dots.
            if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                self.digits();
            }
            // Exponent.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
                if matches!(self.peek(1 + sign), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1 + sign;
                    self.digits();
                }
            }
            // Type suffix (`f64`, `u32`, …).
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).to_string();
        self.push(TokenKind::Num, &text, line);
    }

    fn digits(&mut self) {
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80)
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).to_string();
        self.push(TokenKind::Ident, &text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        if let (Some(a), Some(b)) = (self.peek(0), self.peek(1)) {
            let pair = [a, b];
            if let Ok(pair) = std::str::from_utf8(&pair) {
                if TWO_CHAR_OPS.contains(&pair) {
                    self.pos += 2;
                    self.push(TokenKind::Punct, pair, line);
                    return;
                }
            }
        }
        let b = self.bytes[self.pos.min(self.bytes.len() - 1)];
        self.pos += 1;
        let text = (b as char).to_string();
        self.push(TokenKind::Punct, &text, line);
    }
}

/// True when a numeric literal token is a *float* literal (`0.5`, `1e-9`,
/// `3f64`) — the shapes the float-equality rule cares about.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('e')
        || text.contains('E')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap::iter() in a block /* nested */ comment */
            let s = "call .unwrap() here";
            let r = r#"raw unwrap()"#;
            let ok = true;
        "##;
        let names = idents(src);
        assert!(!names.contains(&"unwrap".to_string()), "{names:?}");
        assert!(!names.contains(&"HashMap".to_string()));
        assert!(names.contains(&"ok".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// lint:allow(panic): fine\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].text, "lint:allow(panic): fine");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_quote_char_does_not_derail() {
        let names = idents(r"let q = '\''; let after = 1;");
        assert!(names.contains(&"after".to_string()));
    }

    #[test]
    fn two_char_operators_fuse() {
        let lexed = lex("a == b != c :: d");
        let puncts: Vec<String> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
    }

    #[test]
    fn numbers_keep_their_shape() {
        let lexed = lex("0.5 1e-9 0xff 3f64 1..3");
        let nums: Vec<String> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0.5", "1e-9", "0xff", "3f64", "1", "3"]);
        assert!(is_float_literal("0.5"));
        assert!(is_float_literal("1e-9"));
        assert!(is_float_literal("3f64"));
        assert!(!is_float_literal("0xff"));
        assert!(!is_float_literal("1"));
    }

    #[test]
    fn byte_strings_and_raw_fences() {
        let names = idents(r##"let a = b"unwrap()"; let b = br#"iter()"#; let tail = 0;"##);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"iter".to_string()));
        assert!(names.contains(&"tail".to_string()));
    }

    #[test]
    fn lines_advance_through_multiline_literals() {
        let src = "let s = \"line\none\";\nlet after = 1;";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }
}
