//! `srclda-lint`: workspace static analysis for the contracts the compiler
//! cannot see.
//!
//! The workspace's scale directions (sharded training, online ingest, C10K
//! serving) all lean on invariants that live outside the type system:
//! *(seed, shards) fixes output bits*, *the daemon request path never
//! panics a pooled worker*, *numeric guards never silently clamp*. This
//! crate machine-checks those contracts on every build instead of
//! re-arguing them in review.
//!
//! Architecture, in the repo's hand-rolled style (zero dependencies):
//!
//! - [`lexer`] — a small Rust tokenizer that hides string/comment contents
//!   from the rules and surfaces comments for waiver parsing;
//! - [`rules`] — token-stream matchers for the determinism, panic-freedom,
//!   numeric-safety, and hygiene rule families, plus waiver handling;
//! - [`config`] — `lint.toml` loading (scan roots, per-rule path scoping).
//!
//! The binary walks the configured roots in sorted order, lints every
//! `.rs` file, prints `path:line: [rule] message` findings, and exits 2
//! when any exist — so CI can gate on it like a test.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{parse as parse_config, Config, ConfigError};
pub use rules::{analyze, Finding, RULES};

use std::io;
use std::path::Path;

/// Lint a single source file against `cfg`. `rel_path` must be
/// workspace-relative with `/` separators — scoping and file-kind
/// classification key off it.
pub fn lint_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    rules::analyze(rel_path, source, cfg)
}

/// Walk `cfg.roots` under `root` (deterministically: directory entries
/// sorted by name), lint every `.rs` file, and return all findings sorted
/// by (path, line, rule).
pub fn lint_tree(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(root, &dir, cfg, &mut report)?;
        } else if dir.is_file() {
            lint_file(root, &dir, cfg, &mut report)?;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// What a tree lint produced: the findings plus how much was scanned
/// (reported so "clean" is distinguishable from "scanned nothing").
#[derive(Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

fn walk(root: &Path, dir: &Path, cfg: &Config, report: &mut LintReport) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(rel) = relative(root, &path) else {
            continue;
        };
        if !cfg.walk_includes(&rel) || rel.split('/').any(|c| c == "target") {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, cfg, report)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            lint_file(root, &path, cfg, report)?;
        }
    }
    Ok(())
}

fn lint_file(root: &Path, path: &Path, cfg: &Config, report: &mut LintReport) -> io::Result<()> {
    let Some(rel) = relative(root, path) else {
        return Ok(());
    };
    if !cfg.walk_includes(&rel) {
        return Ok(());
    }
    let source = std::fs::read_to_string(path)?;
    report.files_scanned += 1;
    report.findings.extend(rules::analyze(&rel, &source, cfg));
    Ok(())
}

/// Workspace-relative `/`-separated path, or `None` when `path` is not
/// under `root`.
fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<&str> = rel.iter().map(|c| c.to_str().unwrap_or("?")).collect();
    Some(parts.join("/"))
}
