//! Waiver-behavior fixture: one justified waiver, one unjustified one,
//! one stale one, and one naming an unknown rule.
//!
//! Never compiled — `include_str!`-ed as lint input by `fixture_lint.rs`,
//! which pins the line numbers below.

pub fn justified(x: Option<u32>) -> u32 {
    // lint:allow(panic): fixture — the caller constructs `x` as Some
    x.unwrap() // line 9: suppressed by the waiver above
}

pub fn unjustified(x: Option<u32>) -> u32 {
    // lint:allow(panic):
    x.unwrap() // line 14: NOT suppressed; line 13 is a waiver-syntax error
}

pub fn stale() -> u32 {
    // lint:allow(index): nothing on the next line actually indexes
    42 // line 18's waiver suppresses nothing -> stale-waiver
}

pub fn unknown_rule() -> u32 {
    // lint:allow(no-such-rule): bogus
    7 // line 23 names an unknown rule -> waiver-syntax
}
