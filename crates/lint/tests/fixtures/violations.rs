//! Seeded-violation fixture for the srclda-lint integration tests.
//!
//! This file is never compiled — it is `include_str!`-ed as lint input.
//! `fixture_lint.rs` pins the exact (line, rule) pairs below, so keep the
//! line numbers stable when editing.

use std::collections::HashMap;

pub fn hash_iter(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum() // line 10: hash-iteration
}

pub fn panics(x: Option<u32>) -> u32 {
    x.unwrap() // line 14: panic
}

pub fn index(v: &[u32]) -> u32 {
    v[0] // line 18: index
}

pub fn float_eq(a: f64) -> bool {
    a == 0.25 // line 22: float-eq
}

pub fn narrow(n: usize) -> u32 {
    n as u32 // line 26: narrowing-cast
}

pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now() // line 30: wall-clock
}

pub fn noisy() {
    println!("debug spew"); // line 34: debug-print
}
