//! Fixture-driven integration tests for `srclda-lint`.
//!
//! The fixtures under `tests/fixtures/` are real `.rs` sources (never
//! compiled, only linted) with violations seeded at pinned lines. The
//! tests here drive the library API (`lint_source`, `lint_tree`) and the
//! installed binary, asserting exact `file:line:rule` triples — the same
//! contract CI relies on.

use srclda_lint::{lint_source, lint_tree, parse_config, Config};
use std::path::PathBuf;
use std::process::Command;

const VIOLATIONS: &str = include_str!("fixtures/violations.rs");
const WAIVERS: &str = include_str!("fixtures/waivers.rs");

/// (line, rule) pairs, sorted, for easy whole-file assertions.
fn triples(findings: &[srclda_lint::Finding]) -> Vec<(u32, &str)> {
    let mut out: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.rule)).collect();
    out.sort();
    out
}

#[test]
fn seeded_violations_report_exact_lines() {
    // A library path outside any test scope, with every rule global
    // (default config = no per-rule scoping).
    let fs = lint_source(
        "crates/core/src/violations.rs",
        VIOLATIONS,
        &Config::default(),
    );
    assert_eq!(
        triples(&fs),
        vec![
            (10, "hash-iteration"),
            (14, "panic"),
            (18, "index"),
            (22, "float-eq"),
            (26, "narrowing-cast"),
            (30, "wall-clock"),
            (34, "debug-print"),
        ],
        "{fs:?}"
    );
}

#[test]
fn waiver_semantics_justified_unjustified_stale_unknown() {
    let fs = lint_source(
        "crates/serve/src/server/waivers.rs",
        WAIVERS,
        &Config::default(),
    );
    assert_eq!(
        triples(&fs),
        vec![
            (13, "waiver-syntax"), // no justification -> error, no suppression
            (14, "panic"),         // ...so the underlying finding survives
            (18, "stale-waiver"),  // justified waiver that suppresses nothing
            (23, "waiver-syntax"), // unknown rule id
        ],
        "{fs:?}"
    );
}

#[test]
fn config_scoping_restricts_rules_to_included_paths() {
    let cfg = parse_config(
        r#"
        [files]
        roots = ["crates"]

        [rule.panic]
        include = ["crates/serve/src/server"]

        [rule.wall-clock]
        exclude = ["crates/obs"]
        "#,
    )
    .expect("fixture config parses");

    let in_scope = lint_source(
        "crates/serve/src/server/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        &cfg,
    );
    assert!(
        triples(&in_scope).contains(&(1, "panic")),
        "panic must fire inside its include scope: {in_scope:?}"
    );

    let out_of_scope = lint_source(
        "crates/core/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        &cfg,
    );
    assert!(
        !triples(&out_of_scope).iter().any(|(_, r)| *r == "panic"),
        "panic must not fire outside its include scope: {out_of_scope:?}"
    );

    let clock = "fn now() -> std::time::Instant { std::time::Instant::now() }";
    assert!(
        triples(&lint_source("crates/core/src/t.rs", clock, &cfg))
            .iter()
            .any(|(_, r)| *r == "wall-clock"),
        "wall-clock fires where not excluded"
    );
    assert!(
        triples(&lint_source("crates/obs/src/t.rs", clock, &cfg)).is_empty(),
        "wall-clock must not fire under its exclude"
    );
}

#[test]
fn test_scope_suppresses_strict_rules() {
    // The same seeded violations under a tests/ path only keep the
    // hygiene rules that still apply in test code (none of the seeded
    // ones do — unwrap in tests is fine, println in tests is fine).
    let fs = lint_source(
        "crates/core/tests/violations.rs",
        VIOLATIONS,
        &Config::default(),
    );
    assert_eq!(triples(&fs), vec![], "{fs:?}");
}

/// Build a scratch tree, seed one violation, and check both the library
/// walk and the binary's exit-code contract (0 clean / 2 findings).
#[test]
fn binary_exits_2_on_seeded_violation_and_0_when_clean() {
    let root = std::env::temp_dir().join(format!("srclda-lint-it-{}", std::process::id()));
    let src = root.join("src");
    std::fs::create_dir_all(&src).expect("create scratch tree");
    std::fs::write(root.join("lint.toml"), "[files]\nroots = [\"src\"]\n")
        .expect("write scratch lint.toml");
    std::fs::write(
        src.join("bad.rs"),
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write seeded violation");

    // Library walk sees the seeded finding at the right file:line.
    let cfg = parse_config("[files]\nroots = [\"src\"]\n").expect("config");
    let report = lint_tree(&root, &cfg).expect("walk scratch tree");
    assert_eq!(report.files_scanned, 1);
    assert_eq!(
        report
            .findings
            .iter()
            .map(|f| (f.path.as_str(), f.line, f.rule))
            .collect::<Vec<_>>(),
        vec![("src/bad.rs", 2, "panic")]
    );

    // Binary: findings -> exit 2, with the file:line in the output.
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_srclda-lint"));
    let out = Command::new(&bin)
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run srclda-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("src/bad.rs:2: [panic]"),
        "binary must print file:line findings, got:\n{stdout}"
    );

    // Fix the violation; the same invocation goes clean.
    std::fs::write(
        src.join("bad.rs"),
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
    )
    .expect("rewrite fixed file");
    let out = Command::new(&bin)
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run srclda-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    std::fs::remove_dir_all(&root).ok();
}
