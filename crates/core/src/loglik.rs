//! Joint log-likelihood of the word assignments, `ln P(w | z)`.
//!
//! Figure 6 of the paper plots per-iteration log-likelihood traces for the
//! graphical experiment. We use the standard collapsed expression
//! (Griffiths & Steyvers):
//!
//! ```text
//! ln P(w|z) = Σ_t [ ln B(n_·t + δ_t) − ln B(δ_t) ]
//! ```
//!
//! where `B` is the multivariate beta function and `δ_t` the topic's
//! Dirichlet parameter vector. For λ-integrated topics we use the
//! quadrature-expected hyperparameters (a deterministic surrogate for the
//! intractable mixture normalizer); for frozen (EDA) topics the likelihood
//! term is multinomial: `Σ_w n_wt ln φ_wt`.

use crate::counts::CountMatrices;
use crate::prior::TopicPrior;
use srclda_math::special::ln_gamma;

/// Compute `ln P(w | z)` from the current counts.
pub fn joint_word_log_likelihood(counts: &CountMatrices, priors: &[TopicPrior]) -> f64 {
    let v = counts.vocab_size();
    let mut total = 0.0;
    for (t, prior) in priors.iter().enumerate() {
        match prior {
            TopicPrior::Frozen { phi } => {
                for (w, &p_w) in phi.iter().enumerate().take(v) {
                    let n = counts.nw(w, t);
                    if n > 0 {
                        total += n as f64 * p_w.max(1e-300).ln();
                    }
                }
            }
            _ => {
                let mut delta_sum = 0.0;
                let mut lnb_prior = 0.0;
                let mut lnb_post = 0.0;
                for w in 0..v {
                    let delta = prior.effective_delta(w);
                    if delta <= 0.0 {
                        // Outside a concept's support both prior and
                        // posterior place no mass; the term contributes 0.
                        continue;
                    }
                    delta_sum += delta;
                    lnb_prior += ln_gamma(delta);
                    lnb_post += ln_gamma(delta + counts.nw(w, t) as f64);
                }
                if delta_sum <= 0.0 {
                    continue;
                }
                let nt = counts.nt(t) as f64;
                total += (lnb_post - ln_gamma(delta_sum + nt)) - (lnb_prior - ln_gamma(delta_sum));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_counts(
        assign: &[(usize, usize, usize)],
        v: usize,
        t: usize,
        lens: &[u32],
    ) -> CountMatrices {
        let c = CountMatrices::new(v, t, lens);
        for &(w, d, topic) in assign {
            c.increment(w, d, topic);
        }
        c
    }

    #[test]
    fn empty_counts_give_zero() {
        let counts = CountMatrices::new(3, 2, &[0]);
        let priors = vec![
            TopicPrior::symmetric(0.5, 3).unwrap(),
            TopicPrior::symmetric(0.5, 3).unwrap(),
        ];
        assert!(joint_word_log_likelihood(&counts, &priors).abs() < 1e-12);
    }

    #[test]
    fn concentrated_assignments_beat_scattered() {
        // Topic 0 gets all of word 0; the alternative scatters words evenly.
        let priors = vec![
            TopicPrior::symmetric(0.1, 2).unwrap(),
            TopicPrior::symmetric(0.1, 2).unwrap(),
        ];
        let concentrated = make_counts(&[(0, 0, 0), (0, 0, 0), (1, 0, 1), (1, 0, 1)], 2, 2, &[4]);
        let scattered = make_counts(&[(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 0, 1)], 2, 2, &[4]);
        let lc = joint_word_log_likelihood(&concentrated, &priors);
        let ls = joint_word_log_likelihood(&scattered, &priors);
        assert!(lc > ls, "concentrated {lc} should beat scattered {ls}");
    }

    #[test]
    fn matching_the_source_prior_scores_higher() {
        // A fixed prior strongly favoring word 0 should prefer counts where
        // word 0 is assigned to it.
        let topic = srclda_knowledge::SourceTopic::new("T", vec![20.0, 1.0]);
        let priors = vec![
            TopicPrior::fixed_from_source(&topic, 0.01),
            TopicPrior::symmetric(0.1, 2).unwrap(),
        ];
        let aligned = make_counts(&[(0, 0, 0), (0, 0, 0), (1, 0, 1)], 2, 2, &[3]);
        let misaligned = make_counts(&[(1, 0, 0), (1, 0, 0), (0, 0, 1)], 2, 2, &[3]);
        let la = joint_word_log_likelihood(priors_counts(&aligned), &priors);
        let lm = joint_word_log_likelihood(priors_counts(&misaligned), &priors);
        assert!(la > lm, "{la} vs {lm}");
    }

    // Identity helper to keep the test body symmetrical.
    fn priors_counts(c: &CountMatrices) -> &CountMatrices {
        c
    }

    #[test]
    fn frozen_prior_uses_multinomial_term() {
        let topic = srclda_knowledge::SourceTopic::new("T", vec![9.0, 1.0]);
        let priors = vec![TopicPrior::frozen_from_source(&topic, 0.01)];
        let good = make_counts(&[(0, 0, 0), (0, 0, 0)], 2, 1, &[2]);
        let bad = make_counts(&[(1, 0, 0), (1, 0, 0)], 2, 1, &[2]);
        let lg = joint_word_log_likelihood(&good, &priors);
        let lb = joint_word_log_likelihood(&bad, &priors);
        assert!(lg > lb);
    }
}
