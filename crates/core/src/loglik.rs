//! Joint log-likelihood of the word assignments, `ln P(w | z)`.
//!
//! Figure 6 of the paper plots per-iteration log-likelihood traces for the
//! graphical experiment. We use the standard collapsed expression
//! (Griffiths & Steyvers):
//!
//! ```text
//! ln P(w|z) = Σ_t [ ln B(n_·t + δ_t) − ln B(δ_t) ]
//! ```
//!
//! where `B` is the multivariate beta function and `δ_t` the topic's
//! Dirichlet parameter vector. For λ-integrated topics we use the
//! quadrature-expected hyperparameters (a deterministic surrogate for the
//! intractable mixture normalizer); for frozen (EDA) topics the likelihood
//! term is multinomial: `Σ_w n_wt ln φ_wt`.

use crate::counts::CountMatrices;
use crate::prior::TopicPrior;
use srclda_math::special::ln_gamma;

/// Frozen-topic probabilities below this are clamped before `ln()` so the
/// total stays finite; every token hit by the clamp is **counted** (see
/// [`WordLogLikelihood::clamped_tokens`]) rather than silently absorbed.
const CLAMP_FLOOR: f64 = 1e-300;

/// The joint log-likelihood plus its numeric-health report: how many
/// tokens sat on (near-)zero-probability words and had their contribution
/// clamped to `ln(1e-300)`. A non-zero count means `value` is a *floor* on
/// the true `ln P(w|z) = −∞` degeneracy — callers that treat the trace as
/// exact (convergence detection, model comparison) should surface it, the
/// same way the eval pipeline reports NaN inputs instead of scoring them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordLogLikelihood {
    /// `ln P(w | z)` with clamped frozen-topic terms.
    pub value: f64,
    /// Number of tokens (counted with multiplicity) whose word probability
    /// was below [`CLAMP_FLOOR`] under their assigned frozen topic.
    pub clamped_tokens: u64,
}

/// Compute `ln P(w | z)` from the current counts.
///
/// Thin wrapper over [`joint_word_log_likelihood_counted`] that discards
/// the clamp report — for callers that only plot the trace.
pub fn joint_word_log_likelihood(counts: &CountMatrices, priors: &[TopicPrior]) -> f64 {
    joint_word_log_likelihood_counted(counts, priors).value
}

/// Compute `ln P(w | z)` and report how many tokens were clamped (see
/// [`WordLogLikelihood`]).
pub fn joint_word_log_likelihood_counted(
    counts: &CountMatrices,
    priors: &[TopicPrior],
) -> WordLogLikelihood {
    let v = counts.vocab_size();
    let mut total = 0.0;
    let mut clamped = 0u64;
    for (t, prior) in priors.iter().enumerate() {
        match prior {
            TopicPrior::Frozen { phi } => {
                for (w, &p_w) in phi.iter().enumerate().take(v) {
                    let n = counts.nw(w, t);
                    if n > 0 {
                        if p_w < CLAMP_FLOOR {
                            // A token assigned to a frozen topic that puts
                            // (numerically) no mass on its word: the true
                            // term is −∞ (or near it); clamp but count.
                            clamped += n as u64;
                        }
                        total += n as f64 * p_w.max(CLAMP_FLOOR).ln();
                    }
                }
            }
            _ => {
                let mut delta_sum = 0.0;
                let mut lnb_prior = 0.0;
                let mut lnb_post = 0.0;
                for w in 0..v {
                    let delta = prior.effective_delta(w);
                    if delta <= 0.0 {
                        // Outside a concept's support both prior and
                        // posterior place no mass; the term contributes 0.
                        continue;
                    }
                    delta_sum += delta;
                    lnb_prior += ln_gamma(delta);
                    lnb_post += ln_gamma(delta + counts.nw(w, t) as f64);
                }
                if delta_sum <= 0.0 {
                    continue;
                }
                let nt = counts.nt(t) as f64;
                total += (lnb_post - ln_gamma(delta_sum + nt)) - (lnb_prior - ln_gamma(delta_sum));
            }
        }
    }
    WordLogLikelihood {
        value: total,
        clamped_tokens: clamped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_counts(
        assign: &[(usize, usize, usize)],
        v: usize,
        t: usize,
        lens: &[u32],
    ) -> CountMatrices {
        let c = CountMatrices::new(v, t, lens);
        for &(w, d, topic) in assign {
            c.increment(w, d, topic);
        }
        c
    }

    #[test]
    fn empty_counts_give_zero() {
        let counts = CountMatrices::new(3, 2, &[0]);
        let priors = vec![
            TopicPrior::symmetric(0.5, 3).unwrap(),
            TopicPrior::symmetric(0.5, 3).unwrap(),
        ];
        assert!(joint_word_log_likelihood(&counts, &priors).abs() < 1e-12);
    }

    #[test]
    fn concentrated_assignments_beat_scattered() {
        // Topic 0 gets all of word 0; the alternative scatters words evenly.
        let priors = vec![
            TopicPrior::symmetric(0.1, 2).unwrap(),
            TopicPrior::symmetric(0.1, 2).unwrap(),
        ];
        let concentrated = make_counts(&[(0, 0, 0), (0, 0, 0), (1, 0, 1), (1, 0, 1)], 2, 2, &[4]);
        let scattered = make_counts(&[(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 0, 1)], 2, 2, &[4]);
        let lc = joint_word_log_likelihood(&concentrated, &priors);
        let ls = joint_word_log_likelihood(&scattered, &priors);
        assert!(lc > ls, "concentrated {lc} should beat scattered {ls}");
    }

    #[test]
    fn matching_the_source_prior_scores_higher() {
        // A fixed prior strongly favoring word 0 should prefer counts where
        // word 0 is assigned to it.
        let topic = srclda_knowledge::SourceTopic::new("T", vec![20.0, 1.0]);
        let priors = vec![
            TopicPrior::fixed_from_source(&topic, 0.01),
            TopicPrior::symmetric(0.1, 2).unwrap(),
        ];
        let aligned = make_counts(&[(0, 0, 0), (0, 0, 0), (1, 0, 1)], 2, 2, &[3]);
        let misaligned = make_counts(&[(1, 0, 0), (1, 0, 0), (0, 0, 1)], 2, 2, &[3]);
        let la = joint_word_log_likelihood(priors_counts(&aligned), &priors);
        let lm = joint_word_log_likelihood(priors_counts(&misaligned), &priors);
        assert!(la > lm, "{la} vs {lm}");
    }

    // Identity helper to keep the test body symmetrical.
    fn priors_counts(c: &CountMatrices) -> &CountMatrices {
        c
    }

    #[test]
    fn frozen_prior_uses_multinomial_term() {
        let topic = srclda_knowledge::SourceTopic::new("T", vec![9.0, 1.0]);
        let priors = vec![TopicPrior::frozen_from_source(&topic, 0.01)];
        let good = make_counts(&[(0, 0, 0), (0, 0, 0)], 2, 1, &[2]);
        let bad = make_counts(&[(1, 0, 0), (1, 0, 0)], 2, 1, &[2]);
        let lg = joint_word_log_likelihood(&good, &priors);
        let lb = joint_word_log_likelihood(&bad, &priors);
        assert!(lg > lb);
    }

    #[test]
    fn clamped_frozen_tokens_are_counted_not_silently_floored() {
        // A frozen topic with literally zero mass on word 1 (no smoothing:
        // frozen φ is the normalized raw counts), plus three tokens of
        // word 1 assigned to it anyway — the degenerate state the old code
        // hid behind a silent `max(1e-300)`.
        let topic = srclda_knowledge::SourceTopic::new("T", vec![5.0, 0.0]);
        let priors = vec![TopicPrior::frozen_from_source(&topic, 0.0)];
        let counts = make_counts(&[(0, 0, 0), (1, 0, 0), (1, 0, 0), (1, 0, 0)], 2, 1, &[4]);
        let report = joint_word_log_likelihood_counted(&counts, &priors);
        assert!(report.value.is_finite(), "clamp must keep the value finite");
        assert_eq!(
            report.clamped_tokens, 3,
            "each zero-probability token counted with multiplicity"
        );
        // The wrapper still returns the clamped value.
        assert_eq!(report.value, joint_word_log_likelihood(&counts, &priors));

        // A healthy state reports zero clamped tokens.
        let healthy = make_counts(&[(0, 0, 0), (0, 0, 0)], 2, 1, &[2]);
        let clean = joint_word_log_likelihood_counted(&healthy, &priors);
        assert_eq!(clean.clamped_tokens, 0);
    }
}
