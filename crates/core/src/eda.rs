//! Explicit Dirichlet allocation (Hansen et al. 2013) — the baseline that
//! freezes every topic at its knowledge-source word distribution.
//!
//! EDA "does not discover new topics, nor does it update the word
//! distributions of the input topics" (paper §IV.C): sampling only moves the
//! document–topic counts, with `p(w | t) = φ_w` fixed to the (ε-smoothed)
//! source distribution.

use crate::model::{FittedModel, GibbsModel};
use crate::params::ModelConfig;
use crate::prior::TopicPrior;
use srclda_corpus::Corpus;
use srclda_knowledge::KnowledgeSource;

/// A configured EDA model.
#[derive(Debug, Clone)]
pub struct Eda {
    source: KnowledgeSource,
    config: ModelConfig,
}

/// Builder for [`Eda`].
#[derive(Debug, Clone, Default)]
pub struct EdaBuilder {
    source: Option<KnowledgeSource>,
    config: ModelConfig,
}

impl Eda {
    /// Start building an EDA model.
    pub fn builder() -> EdaBuilder {
        EdaBuilder::default()
    }

    /// Number of topics (= knowledge-source size).
    pub fn num_topics(&self) -> usize {
        self.source.len()
    }

    /// Fit on a corpus (infers θ and token assignments only; φ stays at the
    /// source distributions).
    ///
    /// # Errors
    /// Propagates engine errors.
    pub fn fit(&self, corpus: &Corpus) -> crate::Result<FittedModel> {
        let v = corpus.vocab_size();
        if self.source.vocab_size() != v {
            return Err(crate::CoreError::VocabularyMismatch {
                source: self.source.vocab_size(),
                corpus: v,
            });
        }
        let priors: Vec<TopicPrior> = self
            .source
            .topics()
            .iter()
            .map(|t| TopicPrior::frozen_from_source(t, self.config.epsilon))
            .collect();
        let labels = self
            .source
            .topics()
            .iter()
            .map(|t| Some(t.label().to_string()))
            .collect();
        GibbsModel::new(priors, labels, v, self.config.clone())?.fit(corpus)
    }
}

impl EdaBuilder {
    /// Set the knowledge source (required).
    pub fn knowledge_source(mut self, ks: KnowledgeSource) -> Self {
        self.source = Some(ks);
        self
    }

    /// Set the document–topic prior α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Set the smoothing ε applied to source distributions.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Set the Gibbs iteration count.
    pub fn iterations(mut self, iters: usize) -> Self {
        self.config.iterations = iters;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the sampler backend.
    pub fn backend(mut self, backend: crate::sampler::Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Finish, validating the configuration.
    ///
    /// # Errors
    /// Fails without a knowledge source.
    pub fn build(self) -> crate::Result<Eda> {
        let source = self
            .source
            .ok_or(crate::CoreError::MissingKnowledgeSource)?;
        if source.is_empty() {
            return Err(crate::CoreError::MissingKnowledgeSource);
        }
        self.config.validate()?;
        Ok(Eda {
            source,
            config: self.config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};
    use srclda_knowledge::KnowledgeSourceBuilder;

    fn setup() -> (Corpus, KnowledgeSource) {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..5 {
            b.add_tokens("d1", &["gas", "gas", "pipeline"]);
            b.add_tokens("d2", &["stock", "market", "market"]);
        }
        let c = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_article("Natural Gas", "gas gas gas pipeline pipeline energy");
        ks.add_article("Stock Market", "stock stock market market trader");
        let source = ks.build(c.vocabulary());
        (c, source)
    }

    #[test]
    fn phi_stays_at_source_distributions() {
        let (c, ks) = setup();
        let expected: Vec<Vec<f64>> = ks
            .topics()
            .iter()
            .map(|t| {
                let h = t.hyperparameters(0.01);
                let s: f64 = h.iter().sum();
                h.iter().map(|&x| x / s).collect()
            })
            .collect();
        let eda = Eda::builder()
            .knowledge_source(ks)
            .epsilon(0.01)
            .iterations(30)
            .build()
            .unwrap();
        let fitted = eda.fit(&c).unwrap();
        for (t, want) in expected.iter().enumerate() {
            for (got, want) in fitted.phi_row(t).iter().zip(want) {
                assert!(
                    (got - want).abs() < 1e-9,
                    "phi must not move: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn documents_load_on_matching_topics() {
        let (c, ks) = setup();
        let eda = Eda::builder()
            .knowledge_source(ks)
            .alpha(0.2)
            .iterations(60)
            .seed(3)
            .build()
            .unwrap();
        let fitted = eda.fit(&c).unwrap();
        // Even-indexed docs are gas documents; odd are stock documents.
        let gas = fitted
            .labels()
            .iter()
            .position(|l| l.as_deref() == Some("Natural Gas"))
            .unwrap();
        for d in 0..c.num_docs() {
            let theta = fitted.theta_row(d);
            if d % 2 == 0 {
                assert!(theta[gas] > 0.5, "doc {d} should lean gas: {theta:?}");
            } else {
                assert!(theta[gas] < 0.5, "doc {d} should lean stock: {theta:?}");
            }
        }
    }

    #[test]
    fn builder_requires_source() {
        assert!(Eda::builder().build().is_err());
    }
}
