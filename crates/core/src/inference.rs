//! Online fold-in inference: score *new* documents against an already
//! trained model.
//!
//! Training (the collapsed Gibbs sampler in [`crate::model`]) and held-out
//! evaluation (§III.C.5a, [`crate::perplexity`]) both work on whole corpora
//! inside one process. Serving works differently: a model is trained once,
//! persisted, and then asked to label a stream of unseen documents, one at a
//! time, concurrently. [`Inference`] is the engine for that workload — it
//! holds only what scoring needs (φ, α, labels), so it can be rebuilt from a
//! deserialized artifact without the training corpus, counts, or priors.
//!
//! The estimator is standard *fold-in* Gibbs sampling: φ is frozen at its
//! trained value and only the new document's topic assignments are sampled,
//!
//! ```text
//! p(z_j = t | w_j = w, z_¬j) ∝ φ_tw · (ñ_dt^¬j + α)
//! ```
//!
//! after which `θ̃_td = (ñ_dt + α) / (ñ_d + Tα)` and the document's
//! perplexity is `exp(−Σ_j ln Σ_t φ_t,w_j θ̃_t / ñ_d)`. This is the cheap
//! single-document specialization of the paper's held-out estimator: the
//! `n + ñ` equations collapse to fixed φ because one document's counts are
//! negligible against the training mass (and must be, for results on one
//! request to be independent of every other request in flight).

use crate::error::CoreError;
use crate::model::FittedModel;
use rand::Rng;
use srclda_math::categorical::binary_search_cumulative;
use srclda_math::{rng_from_seed, DenseMatrix};

/// Options for one fold-in run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldInConfig {
    /// Gibbs sweeps over the document (clamped to at least 1).
    pub iterations: usize,
    /// RNG seed — fold-in is a pure function of `(φ, α, tokens, seed)`.
    pub seed: u64,
}

impl Default for FoldInConfig {
    fn default() -> Self {
        Self {
            iterations: 30,
            seed: 0,
        }
    }
}

/// The posterior summary of one folded-in document.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredDocument {
    theta: Vec<f64>,
    assignments: Vec<u32>,
    log_likelihood: f64,
}

impl InferredDocument {
    /// The document–topic distribution θ̃ (length `T`, sums to 1).
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Final per-token topic assignments (same length as the input tokens).
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Number of tokens that were folded in.
    pub fn num_tokens(&self) -> usize {
        self.assignments.len()
    }

    /// Total log-likelihood `Σ_j ln p(w_j | φ, θ̃)`.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Per-token perplexity `exp(−log-likelihood / ñ_d)`; lower is better.
    ///
    /// An empty document carries no evidence and reports the neutral 1.0.
    pub fn perplexity(&self) -> f64 {
        if self.assignments.is_empty() {
            1.0
        } else {
            (-self.log_likelihood / self.assignments.len() as f64).exp()
        }
    }

    /// Indices of the `n` most probable topics, descending (ties broken by
    /// lowest index — see [`srclda_math::simplex::top_n_indices`]).
    pub fn top_topics(&self, n: usize) -> Vec<usize> {
        srclda_math::simplex::top_n_indices(&self.theta, n)
    }
}

/// A scoring-only view of a trained topic model: φ, α, and labels.
///
/// Build from a live [`FittedModel`] ([`Inference::from_fitted`]) or from
/// deserialized parts ([`Inference::from_parts`]); both paths produce
/// bit-identical fold-in results for the same seed.
#[derive(Debug, Clone)]
pub struct Inference {
    phi: DenseMatrix<f64>,
    /// φ transposed to word-major (`phi_t[w*T + t] = φ_tw`): the fold-in
    /// inner loop walks all topics of one word, which in the topic-major
    /// `phi` strides by `V` per step. The copy doubles φ's memory but makes
    /// the per-token scan a contiguous read — the right trade for a
    /// serving engine that holds one model and scores many documents.
    phi_t: Vec<f64>,
    alpha: f64,
    labels: Vec<Option<String>>,
}

/// Word-major copy of a topic-major φ matrix.
fn transpose_phi(phi: &DenseMatrix<f64>) -> Vec<f64> {
    let (t_count, v) = (phi.rows(), phi.cols());
    let mut phi_t = vec![0.0; v * t_count];
    for t in 0..t_count {
        for (w, &p) in phi.row(t).iter().enumerate() {
            phi_t[w * t_count + t] = p;
        }
    }
    phi_t
}

impl Inference {
    /// Build from explicit parts.
    ///
    /// # Errors
    /// Fails if φ has no topics or no words, `alpha` is not positive and
    /// finite, or the label count does not match φ's topic count.
    pub fn from_parts(
        phi: DenseMatrix<f64>,
        alpha: f64,
        labels: Vec<Option<String>>,
    ) -> crate::Result<Self> {
        if phi.rows() == 0 || phi.cols() == 0 {
            return Err(CoreError::NoTopics);
        }
        if !(alpha > 0.0 && alpha.is_finite()) {
            return Err(CoreError::NonPositiveParameter {
                name: "alpha",
                value: alpha,
            });
        }
        if labels.len() != phi.rows() {
            return Err(CoreError::InvalidConfig(format!(
                "{} labels for {} topics",
                labels.len(),
                phi.rows()
            )));
        }
        let phi_t = transpose_phi(&phi);
        Ok(Self {
            phi,
            phi_t,
            alpha,
            labels,
        })
    }

    /// Snapshot a fitted model's φ/α/labels for serving.
    pub fn from_fitted(fitted: &FittedModel) -> Self {
        let phi = fitted.phi().clone();
        let phi_t = transpose_phi(&phi);
        Self {
            phi,
            phi_t,
            alpha: fitted.alpha(),
            labels: fitted.labels().to_vec(),
        }
    }

    /// Topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.phi.rows()
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.phi.cols()
    }

    /// The frozen topic–word matrix φ.
    pub fn phi(&self) -> &DenseMatrix<f64> {
        &self.phi
    }

    /// The document–topic prior α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Per-topic labels (`None` for unlabeled topics).
    pub fn labels(&self) -> &[Option<String>] {
        &self.labels
    }

    /// Label of one topic.
    pub fn label(&self, t: usize) -> Option<&str> {
        self.labels[t].as_deref()
    }

    /// Fold one tokenized document into the model.
    ///
    /// Deterministic: the result is a pure function of the engine state,
    /// `tokens`, and `config.seed`. An empty token slice yields the prior
    /// (uniform) θ with perplexity 1.
    ///
    /// # Errors
    /// Fails if any token id is outside the model's vocabulary.
    pub fn fold_in(
        &self,
        tokens: &[u32],
        config: &FoldInConfig,
    ) -> crate::Result<InferredDocument> {
        let t_count = self.num_topics();
        let v = self.vocab_size();
        if let Some(&w) = tokens.iter().find(|&&w| w as usize >= v) {
            return Err(CoreError::InvalidConfig(format!(
                "token id {w} outside model vocabulary of size {v}"
            )));
        }
        let denom = tokens.len() as f64 + t_count as f64 * self.alpha;
        if tokens.is_empty() {
            return Ok(InferredDocument {
                theta: vec![1.0 / t_count as f64; t_count],
                assignments: Vec::new(),
                log_likelihood: 0.0,
            });
        }

        let mut rng = rng_from_seed(config.seed);
        let mut nd = vec![0u32; t_count];
        let mut z: Vec<u32> = tokens
            .iter()
            .map(|_| {
                let t = rng.gen_range(0..t_count);
                nd[t] += 1;
                t as u32
            })
            .collect();

        // `fact[t]` mirrors `nd[t] as f64 + α`, patched at the two topics a
        // token move touches — the same incremental bookkeeping as the
        // training kernel, and bit-identical to recomputing per topic.
        let mut fact: Vec<f64> = nd.iter().map(|&n| n as f64 + self.alpha).collect();
        let mut buf = vec![0.0; t_count];
        for _ in 0..config.iterations.max(1) {
            for (j, &word) in tokens.iter().enumerate() {
                let w = word as usize;
                let old = z[j] as usize;
                nd[old] -= 1;
                fact[old] = nd[old] as f64 + self.alpha;
                // Word-major φ row: all topics of `w`, contiguous.
                let phi_row = &self.phi_t[w * t_count..(w + 1) * t_count];
                let mut acc = 0.0;
                for (t, (&p, &f)) in phi_row.iter().zip(&fact).enumerate() {
                    acc += p * f;
                    buf[t] = acc;
                }
                let new = if acc > 0.0 && acc.is_finite() {
                    let u = rng.gen::<f64>() * acc;
                    binary_search_cumulative(&buf, u)
                } else {
                    rng.gen_range(0..t_count)
                };
                z[j] = new as u32;
                nd[new] += 1;
                fact[new] = nd[new] as f64 + self.alpha;
            }
        }

        let theta: Vec<f64> = nd
            .iter()
            .map(|&n| (n as f64 + self.alpha) / denom)
            .collect();
        let log_likelihood = token_log_likelihood(&self.phi, &theta, tokens);
        Ok(InferredDocument {
            theta,
            assignments: z,
            log_likelihood,
        })
    }
}

/// `Σ_j ln p(w_j)` for tokens scored against a fixed φ and a document θ:
/// `p(w) = Σ_t φ_tw θ_t`, floored at 1e-300 to keep logs finite.
///
/// Shared between fold-in and the held-out perplexity estimators
/// ([`crate::perplexity`]), so every code path scores documents identically.
pub fn token_log_likelihood(phi: &DenseMatrix<f64>, theta: &[f64], tokens: &[u32]) -> f64 {
    let t_count = phi.rows();
    debug_assert_eq!(theta.len(), t_count);
    let mut log_prob = 0.0;
    for &word in tokens {
        let w = word as usize;
        let p: f64 = (0..t_count).map(|t| phi[(t, w)] * theta[t]).sum();
        log_prob += p.max(1e-300).ln();
    }
    log_prob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::Lda;
    use srclda_corpus::{Corpus, CorpusBuilder, Tokenizer};

    fn train() -> (Corpus, FittedModel) {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..10 {
            b.add_tokens("a", &["cat", "dog", "pet", "cat"]);
            b.add_tokens("b", &["stock", "bond", "fund", "stock"]);
        }
        let corpus = b.build();
        let fitted = Lda::builder()
            .topics(2)
            .alpha(0.5)
            .beta(0.1)
            .iterations(100)
            .seed(17)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap();
        (corpus, fitted)
    }

    fn ids(corpus: &Corpus, words: &[&str]) -> Vec<u32> {
        words
            .iter()
            .map(|w| corpus.vocabulary().get(w).unwrap().0)
            .collect()
    }

    #[test]
    fn fold_in_produces_normalized_theta() {
        let (corpus, fitted) = train();
        let inf = Inference::from_fitted(&fitted);
        let doc = ids(&corpus, &["cat", "dog", "cat", "pet"]);
        let out = inf.fold_in(&doc, &FoldInConfig::default()).unwrap();
        let sum: f64 = out.theta().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "theta sums to {sum}");
        assert_eq!(out.num_tokens(), 4);
        assert_eq!(out.assignments().len(), 4);
        assert!(out.perplexity() > 1.0);
    }

    #[test]
    fn fold_in_recovers_the_dominant_topic() {
        let (corpus, fitted) = train();
        let inf = Inference::from_fitted(&fitted);
        let animals = ids(&corpus, &["cat", "dog", "pet", "cat", "dog"]);
        let finance = ids(&corpus, &["stock", "bond", "fund", "stock", "bond"]);
        let cfg = FoldInConfig {
            iterations: 50,
            seed: 3,
        };
        let a = inf.fold_in(&animals, &cfg).unwrap();
        let f = inf.fold_in(&finance, &cfg).unwrap();
        let ta = a.top_topics(1)[0];
        let tf = f.top_topics(1)[0];
        assert_ne!(ta, tf, "distinct themes should land on distinct topics");
        assert!(
            a.theta()[ta] > 0.7,
            "theme should dominate: {:?}",
            a.theta()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (corpus, fitted) = train();
        let inf = Inference::from_fitted(&fitted);
        let doc = ids(&corpus, &["cat", "stock", "dog", "fund"]);
        let cfg = FoldInConfig {
            iterations: 25,
            seed: 99,
        };
        let a = inf.fold_in(&doc, &cfg).unwrap();
        let b = inf.fold_in(&doc, &cfg).unwrap();
        assert_eq!(a, b);
        // A different seed is allowed (and here, expected) to mix differently.
        let c = inf
            .fold_in(
                &doc,
                &FoldInConfig {
                    iterations: 25,
                    seed: 100,
                },
            )
            .unwrap();
        assert_eq!(a.num_tokens(), c.num_tokens());
    }

    #[test]
    fn from_parts_matches_from_fitted_bit_exactly() {
        let (corpus, fitted) = train();
        let a = Inference::from_fitted(&fitted);
        let b = Inference::from_parts(
            fitted.phi().clone(),
            fitted.alpha(),
            fitted.labels().to_vec(),
        )
        .unwrap();
        let doc = ids(&corpus, &["pet", "fund", "cat", "cat"]);
        let cfg = FoldInConfig {
            iterations: 40,
            seed: 7,
        };
        let ra = a.fold_in(&doc, &cfg).unwrap();
        let rb = b.fold_in(&doc, &cfg).unwrap();
        assert_eq!(ra.theta(), rb.theta());
        assert_eq!(ra.assignments(), rb.assignments());
        assert_eq!(ra.log_likelihood(), rb.log_likelihood());
    }

    #[test]
    fn empty_document_yields_prior_theta() {
        let (_, fitted) = train();
        let inf = Inference::from_fitted(&fitted);
        let out = inf.fold_in(&[], &FoldInConfig::default()).unwrap();
        assert_eq!(out.num_tokens(), 0);
        assert_eq!(out.theta(), &[0.5, 0.5]);
        assert_eq!(out.perplexity(), 1.0);
        assert_eq!(out.log_likelihood(), 0.0);
    }

    #[test]
    fn rejects_out_of_vocabulary_token_ids() {
        let (_, fitted) = train();
        let inf = Inference::from_fitted(&fitted);
        let v = inf.vocab_size() as u32;
        assert!(matches!(
            inf.fold_in(&[0, v], &FoldInConfig::default()),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(Inference::from_parts(DenseMatrix::zeros(0, 4), 0.5, vec![]).is_err());
        assert!(
            Inference::from_parts(DenseMatrix::filled(2, 2, 0.25), 0.0, vec![None, None]).is_err()
        );
        assert!(Inference::from_parts(DenseMatrix::filled(2, 2, 0.25), 0.5, vec![None]).is_err());
    }

    #[test]
    fn labels_carry_over() {
        let (_, fitted) = train();
        let mut inf = Inference::from_fitted(&fitted);
        assert_eq!(inf.labels().len(), 2);
        inf = Inference::from_parts(inf.phi().clone(), inf.alpha(), vec![Some("A".into()), None])
            .unwrap();
        assert_eq!(inf.label(0), Some("A"));
        assert_eq!(inf.label(1), None);
    }

    #[test]
    fn transposed_phi_matches_topic_major_phi() {
        let (_, fitted) = train();
        let inf = Inference::from_fitted(&fitted);
        let (t_count, v) = (inf.num_topics(), inf.vocab_size());
        for w in 0..v {
            for t in 0..t_count {
                assert_eq!(
                    inf.phi_t[w * t_count + t].to_bits(),
                    inf.phi()[(t, w)].to_bits()
                );
            }
        }
    }

    #[test]
    fn token_log_likelihood_matches_manual_sum() {
        let phi = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let theta = [0.25, 0.75];
        let ll = token_log_likelihood(&phi, &theta, &[0, 1, 1]);
        let p0: f64 = 0.9 * 0.25 + 0.2 * 0.75;
        let p1: f64 = 0.1 * 0.25 + 0.8 * 0.75;
        let manual = p0.ln() + p1.ln() + p1.ln();
        assert!((ll - manual).abs() < 1e-12);
    }
}
