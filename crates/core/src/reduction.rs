//! Superset topic reduction (§III.C.3).
//!
//! Source-LDA deliberately accepts a *superset* of candidate source topics;
//! after sampling, topics that the corpus never used are eliminated, and the
//! survivors can be clustered down to a target count `K`:
//!
//! > "During the inference we eliminate topics which are not assigned to
//! > any documents. At the end of the sampling phase we then can use a
//! > clustering algorithm (such as k-means, JS divergence) to further
//! > reduce the modeled topics … topics not appearing in a frequent enough
//! > of documents were eliminated."

use crate::error::CoreError;
use crate::model::FittedModel;
use srclda_math::{rng_from_seed, DenseMatrix, KMeans};

/// How to reduce the fitted topic set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionPolicy {
    /// Keep topics assigned (with ≥ `min_tokens` tokens) in at least
    /// `min_docs` documents.
    DocFrequency {
        /// Minimum number of documents.
        min_docs: usize,
        /// Minimum tokens within a document to count it.
        min_tokens: u32,
    },
    /// Apply the document-frequency filter, then k-means-cluster (JS
    /// divergence) the surviving φ rows down to at most `k` topics.
    ClusterToK {
        /// Target topic count `K`.
        k: usize,
        /// Minimum number of documents (pre-filter).
        min_docs: usize,
        /// Minimum tokens within a document to count it.
        min_tokens: u32,
        /// Clustering seed.
        seed: u64,
    },
}

/// The reduced topic set.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    /// Original topic indices that survived the document-frequency filter.
    pub kept: Vec<usize>,
    /// Reduced topic–word matrix (one row per kept topic, or per cluster
    /// centroid when clustering).
    pub phi: DenseMatrix<f64>,
    /// Label per reduced topic (for clusters: the label of the member with
    /// the most assigned tokens).
    pub labels: Vec<Option<String>>,
    /// For clustering: each kept topic's cluster index (aligned with
    /// `kept`); identity mapping for plain filtering.
    pub cluster_of: Vec<usize>,
}

impl ReducedModel {
    /// Number of reduced topics.
    pub fn num_topics(&self) -> usize {
        self.phi.rows()
    }
}

/// Reduce a fitted model's topics.
///
/// # Errors
/// Fails if the filter eliminates every topic.
pub fn reduce(fitted: &FittedModel, policy: ReductionPolicy) -> crate::Result<ReducedModel> {
    let (min_docs, min_tokens) = match policy {
        ReductionPolicy::DocFrequency {
            min_docs,
            min_tokens,
        }
        | ReductionPolicy::ClusterToK {
            min_docs,
            min_tokens,
            ..
        } => (min_docs, min_tokens),
    };
    // One batched pass over the count matrices: the per-topic query re-scans
    // all of `nd` for every topic (O(D·T²) across the filter).
    let doc_freq = fitted.topic_doc_frequencies(min_tokens);
    let kept: Vec<usize> = (0..fitted.num_topics())
        .filter(|&t| doc_freq[t] >= min_docs.max(1))
        .collect();
    if kept.is_empty() {
        return Err(CoreError::InvalidConfig(
            "topic reduction eliminated every topic; lower min_docs".into(),
        ));
    }

    match policy {
        ReductionPolicy::DocFrequency { .. } => {
            let v = fitted.vocab_size();
            let mut phi = DenseMatrix::zeros(kept.len(), v);
            let mut labels = Vec::with_capacity(kept.len());
            for (i, &t) in kept.iter().enumerate() {
                phi.row_mut(i).copy_from_slice(fitted.phi_row(t));
                labels.push(fitted.label(t).map(String::from));
            }
            let cluster_of = (0..kept.len()).collect();
            Ok(ReducedModel {
                kept,
                phi,
                labels,
                cluster_of,
            })
        }
        ReductionPolicy::ClusterToK { k, seed, .. } => {
            let k = k.max(1);
            if kept.len() <= k {
                // Nothing to merge — fall through to plain filtering.
                return reduce(
                    fitted,
                    ReductionPolicy::DocFrequency {
                        min_docs,
                        min_tokens,
                    },
                );
            }
            let rows: Vec<Vec<f64>> = kept.iter().map(|&t| fitted.phi_row(t).to_vec()).collect();
            let mut rng = rng_from_seed(seed);
            let result = KMeans::new(k).fit(&rows, &mut rng)?;
            let v = fitted.vocab_size();
            let mut phi = DenseMatrix::zeros(k, v);
            for (c, centroid) in result.centroids.iter().enumerate() {
                phi.row_mut(c).copy_from_slice(centroid);
            }
            // Cluster label = label of the member with the most tokens.
            let mut labels: Vec<Option<String>> = vec![None; k];
            let mut best_mass = vec![0u64; k];
            for (i, &t) in kept.iter().enumerate() {
                let c = result.assignments[i];
                let mass = fitted.counts().nt(t) as u64;
                if mass >= best_mass[c] {
                    best_mass[c] = mass;
                    if let Some(l) = fitted.label(t) {
                        labels[c] = Some(l.to_string());
                    }
                }
            }
            Ok(ReducedModel {
                kept,
                phi,
                labels,
                cluster_of: result.assignments,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_lda::{SourceLda, Variant};
    use srclda_corpus::{Corpus, CorpusBuilder, Tokenizer};
    use srclda_knowledge::{KnowledgeSource, KnowledgeSourceBuilder};

    /// Corpus drawn from two topics, knowledge source a superset of four.
    fn setup() -> (Corpus, KnowledgeSource) {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..10 {
            b.add_tokens("d-gas", &["gas", "pipeline", "gas", "energy"]);
            b.add_tokens("d-stock", &["stock", "market", "fund", "stock"]);
        }
        let c = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_article("Natural Gas", "gas gas pipeline pipeline energy energy");
        ks.add_article("Stock Market", "stock stock market market fund fund");
        ks.add_article("Cricket", "wicket bowler batsman innings");
        ks.add_article("Opera", "soprano aria libretto tenor");
        let source = ks.build(c.vocabulary());
        (c, source)
    }

    fn fitted() -> (Corpus, crate::model::FittedModel) {
        let (c, ks) = setup();
        let model = SourceLda::builder()
            .knowledge_source(ks)
            .variant(Variant::Mixture)
            .unlabeled_topics(1)
            .alpha(0.2)
            .iterations(80)
            .seed(21)
            .build()
            .unwrap();
        let f = model.fit(&c).unwrap();
        (c, f)
    }

    #[test]
    fn unused_superset_topics_are_eliminated() {
        let (_, f) = fitted();
        let reduced = reduce(
            &f,
            ReductionPolicy::DocFrequency {
                min_docs: 3,
                min_tokens: 2,
            },
        )
        .unwrap();
        let labels: Vec<&str> = reduced.labels.iter().filter_map(|l| l.as_deref()).collect();
        assert!(labels.contains(&"Natural Gas"), "labels: {labels:?}");
        assert!(labels.contains(&"Stock Market"));
        // Cricket/Opera have no corpus support (their articles share no
        // vocabulary with the corpus) and must be gone.
        assert!(!labels.contains(&"Cricket"));
        assert!(!labels.contains(&"Opera"));
    }

    #[test]
    fn reduced_phi_rows_match_kept_topics() {
        let (_, f) = fitted();
        let reduced = reduce(
            &f,
            ReductionPolicy::DocFrequency {
                min_docs: 1,
                min_tokens: 1,
            },
        )
        .unwrap();
        for (i, &t) in reduced.kept.iter().enumerate() {
            assert_eq!(reduced.phi.row(i), f.phi_row(t));
        }
        assert_eq!(
            reduced.cluster_of,
            (0..reduced.kept.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clustering_reduces_to_k() {
        let (_, f) = fitted();
        let reduced = reduce(
            &f,
            ReductionPolicy::ClusterToK {
                k: 2,
                min_docs: 1,
                min_tokens: 1,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(reduced.num_topics(), 2);
        assert_eq!(reduced.cluster_of.len(), reduced.kept.len());
        // Every centroid row is a distribution.
        for t in 0..2 {
            let sum: f64 = reduced.phi.row(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {t} sums to {sum}");
        }
    }

    #[test]
    fn over_aggressive_filter_errors() {
        let (_, f) = fitted();
        let result = reduce(
            &f,
            ReductionPolicy::DocFrequency {
                min_docs: 10_000,
                min_tokens: 1,
            },
        );
        assert!(result.is_err());
    }

    #[test]
    fn cluster_to_k_with_few_topics_degrades_to_filter() {
        let (_, f) = fitted();
        let reduced = reduce(
            &f,
            ReductionPolicy::ClusterToK {
                k: 50,
                min_docs: 1,
                min_tokens: 1,
                seed: 1,
            },
        )
        .unwrap();
        assert!(reduced.num_topics() <= f.num_topics());
    }
}
