//! The collapsed Gibbs count matrices `nw` (word × topic), `nd`
//! (document × topic) and `nt` (topic totals).
//!
//! Storage is `AtomicU32` with relaxed ordering so the parallel samplers can
//! read counts from worker threads while the leader thread mutates them
//! between barriers (which supply the ordering). On x86-64 a relaxed atomic
//! load/store compiles to a plain `mov`, so the serial sampler pays nothing
//! for this.
//!
//! Layout: `nw` is row-major by **word** (`nw[w*T + t]`), `nd` row-major by
//! document — both give the per-token inner loop over `t` a contiguous walk.

use std::sync::atomic::{AtomicU32, Ordering};

/// Count matrices for a `V`-word vocabulary, `D` documents, `T` topics.
#[derive(Debug)]
pub struct CountMatrices {
    nw: Vec<AtomicU32>,
    nd: Vec<AtomicU32>,
    nt: Vec<AtomicU32>,
    doc_len: Vec<u32>,
    v: usize,
    t: usize,
}

impl CountMatrices {
    /// Zeroed matrices for the given dimensions; `doc_lens` fixes each
    /// document's token count.
    pub fn new(v: usize, t: usize, doc_lens: &[u32]) -> Self {
        let mut nw = Vec::with_capacity(v * t);
        nw.resize_with(v * t, || AtomicU32::new(0));
        let mut nd = Vec::with_capacity(doc_lens.len() * t);
        nd.resize_with(doc_lens.len() * t, || AtomicU32::new(0));
        let mut nt = Vec::with_capacity(t);
        nt.resize_with(t, || AtomicU32::new(0));
        Self {
            nw,
            nd,
            nt,
            doc_len: doc_lens.to_vec(),
            v,
            t,
        }
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.v
    }

    /// Topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.t
    }

    /// Document count `D`.
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Token count of document `d`.
    #[inline]
    pub fn doc_len(&self, d: usize) -> u32 {
        self.doc_len[d]
    }

    /// `n_w,t` — times word `w` is assigned to topic `t`.
    #[inline]
    pub fn nw(&self, w: usize, t: usize) -> u32 {
        self.nw[w * self.t + t].load(Ordering::Relaxed)
    }

    /// `n_d,t` — times topic `t` is assigned in document `d`.
    #[inline]
    pub fn nd(&self, d: usize, t: usize) -> u32 {
        self.nd[d * self.t + t].load(Ordering::Relaxed)
    }

    /// `n_t` — total assignments to topic `t`.
    #[inline]
    pub fn nt(&self, t: usize) -> u32 {
        self.nt[t].load(Ordering::Relaxed)
    }

    /// The contiguous `nw` row for word `w` (length `T`).
    #[inline]
    pub fn nw_row(&self, w: usize) -> &[AtomicU32] {
        &self.nw[w * self.t..(w + 1) * self.t]
    }

    /// The contiguous `nd` row for document `d` (length `T`).
    #[inline]
    pub fn nd_row(&self, d: usize) -> &[AtomicU32] {
        &self.nd[d * self.t..(d + 1) * self.t]
    }

    /// The topic-total vector (length `T`).
    #[inline]
    pub fn nt_all(&self) -> &[AtomicU32] {
        &self.nt
    }

    /// Record an assignment of word `w` in document `d` to topic `t`.
    #[inline]
    pub fn increment(&self, w: usize, d: usize, t: usize) {
        self.nw[w * self.t + t].fetch_add(1, Ordering::Relaxed);
        self.nd[d * self.t + t].fetch_add(1, Ordering::Relaxed);
        self.nt[t].fetch_add(1, Ordering::Relaxed);
    }

    /// Remove an assignment of word `w` in document `d` to topic `t`.
    ///
    /// # Panics
    /// Debug builds panic on underflow (an invariant violation).
    #[inline]
    pub fn decrement(&self, w: usize, d: usize, t: usize) {
        let a = self.nw[w * self.t + t].fetch_sub(1, Ordering::Relaxed);
        let b = self.nd[d * self.t + t].fetch_sub(1, Ordering::Relaxed);
        let c = self.nt[t].fetch_sub(1, Ordering::Relaxed);
        debug_assert!(
            a > 0 && b > 0 && c > 0,
            "count underflow at w={w} d={d} t={t}"
        );
    }

    /// [`Self::increment`] without atomic read-modify-write: a relaxed load
    /// plus a relaxed store per cell, which compile to plain `mov`s instead
    /// of `lock xadd`. Correct **only** while a single thread mutates the
    /// matrices — the serial sampling kernel's fast path. The parallel
    /// backends must keep using [`Self::increment`].
    #[inline]
    pub fn increment_serial(&self, w: usize, d: usize, t: usize) {
        for cell in [
            &self.nw[w * self.t + t],
            &self.nd[d * self.t + t],
            &self.nt[t],
        ] {
            cell.store(cell.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
    }

    /// [`Self::decrement`] without atomic read-modify-write; same
    /// single-writer contract as [`Self::increment_serial`].
    ///
    /// # Panics
    /// Debug builds panic on underflow (an invariant violation).
    #[inline]
    pub fn decrement_serial(&self, w: usize, d: usize, t: usize) {
        for cell in [
            &self.nw[w * self.t + t],
            &self.nd[d * self.t + t],
            &self.nt[t],
        ] {
            let v = cell.load(Ordering::Relaxed);
            debug_assert!(v > 0, "count underflow at w={w} d={d} t={t}");
            cell.store(v.wrapping_sub(1), Ordering::Relaxed);
        }
    }

    /// Number of documents in which topic `t` has at least `min_tokens`
    /// assignments (the document-frequency signal used by the superset
    /// topic reduction, §III.C.3).
    pub fn topic_doc_frequency(&self, t: usize, min_tokens: u32) -> usize {
        let threshold = min_tokens.max(1);
        (0..self.num_docs())
            .filter(|&d| self.nd(d, t) >= threshold)
            .count()
    }

    /// Document frequencies of **all** topics in one pass over `nd`:
    /// `out[t]` counts the documents with at least `min_tokens` assignments
    /// to topic `t`. Equivalent to calling [`Self::topic_doc_frequency`]
    /// once per topic, but walks the `D×T` matrix once instead of `T` times
    /// (the superset-reduction pass was `O(D·T²)` without it).
    pub fn topic_doc_frequencies(&self, min_tokens: u32) -> Vec<usize> {
        let threshold = min_tokens.max(1);
        let mut out = vec![0usize; self.t];
        for d in 0..self.num_docs() {
            for (freq, cell) in out.iter_mut().zip(self.nd_row(d)) {
                if cell.load(Ordering::Relaxed) >= threshold {
                    *freq += 1;
                }
            }
        }
        out
    }

    /// Verify internal consistency (test helper): column sums of `nw` match
    /// `nt`, and row sums of `nd` match document lengths.
    pub fn check_invariants(&self) -> bool {
        for t in 0..self.t {
            let col: u64 = (0..self.v).map(|w| self.nw(w, t) as u64).sum();
            if col != self.nt(t) as u64 {
                return false;
            }
        }
        for d in 0..self.num_docs() {
            let row: u64 = (0..self.t).map(|t| self.nd(d, t) as u64).sum();
            if row != self.doc_len[d] as u64 {
                return false;
            }
        }
        true
    }

    /// Snapshot the `nw` matrix into plain integers (held-out perplexity
    /// freezes training counts).
    pub fn snapshot_nw(&self) -> Vec<u32> {
        self.nw.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Snapshot the topic totals.
    pub fn snapshot_nt(&self) -> Vec<u32> {
        self.nt.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Snapshot the `nd` matrix (row-major by document).
    pub fn snapshot_nd(&self) -> Vec<u32> {
        self.nd.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Overwrite `nw` and `nt` from plain-integer snapshots (the sharded
    /// backend refreshes each shard's local word/topic counts from the
    /// merged global state at every sweep boundary). Relaxed stores; the
    /// single-writer contract of [`Self::increment_serial`] applies.
    ///
    /// # Panics
    /// Panics if the snapshot lengths do not match `V·T` / `T`.
    pub fn load_nw_nt(&self, nw: &[u32], nt: &[u32]) {
        assert_eq!(nw.len(), self.nw.len(), "nw snapshot length");
        assert_eq!(nt.len(), self.nt.len(), "nt snapshot length");
        for (cell, &value) in self.nw.iter().zip(nw) {
            cell.store(value, Ordering::Relaxed);
        }
        for (cell, &value) in self.nt.iter().zip(nt) {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Accumulate this matrix's `nw`/`nt` **deltas against a base
    /// snapshot** into `out`: `out[i] += self[i] − base[i]`, in wrapping
    /// arithmetic so transient per-shard negatives cancel exactly when
    /// every shard's delta has been applied. This is the sweep-boundary
    /// merge of the sharded backend: starting from `out = base`, applying
    /// every shard's delta yields counts consistent with the post-sweep
    /// assignments.
    ///
    /// # Panics
    /// Panics if the slice lengths do not match `V·T` / `T`.
    pub fn add_deltas_into(
        &self,
        base_nw: &[u32],
        base_nt: &[u32],
        out_nw: &mut [u32],
        out_nt: &mut [u32],
    ) {
        assert_eq!(base_nw.len(), self.nw.len(), "base nw length");
        assert_eq!(base_nt.len(), self.nt.len(), "base nt length");
        assert_eq!(out_nw.len(), self.nw.len(), "out nw length");
        assert_eq!(out_nt.len(), self.nt.len(), "out nt length");
        for ((cell, &base), out) in self.nw.iter().zip(base_nw).zip(out_nw.iter_mut()) {
            *out = out.wrapping_add(cell.load(Ordering::Relaxed).wrapping_sub(base));
        }
        for ((cell, &base), out) in self.nt.iter().zip(base_nt).zip(out_nt.iter_mut()) {
            *out = out.wrapping_add(cell.load(Ordering::Relaxed).wrapping_sub(base));
        }
    }

    /// Copy document `src_d`'s `nd` row from `src` into this matrix's row
    /// `d` (the sharded backend publishing a shard-local document row back
    /// into the global matrices).
    ///
    /// # Panics
    /// Panics if the topic counts of the two matrices differ.
    pub fn copy_nd_row_from(&self, d: usize, src: &CountMatrices, src_d: usize) {
        assert_eq!(self.t, src.t, "topic count mismatch");
        for (dst, cell) in self.nd_row(d).iter().zip(src.nd_row(src_d)) {
            dst.store(cell.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let c = CountMatrices::new(5, 3, &[4, 2]);
        assert_eq!(c.vocab_size(), 5);
        assert_eq!(c.num_topics(), 3);
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.doc_len(0), 4);
    }

    #[test]
    fn increment_decrement_round_trip() {
        let c = CountMatrices::new(3, 2, &[2]);
        c.increment(1, 0, 1);
        c.increment(1, 0, 1);
        assert_eq!(c.nw(1, 1), 2);
        assert_eq!(c.nd(0, 1), 2);
        assert_eq!(c.nt(1), 2);
        c.decrement(1, 0, 1);
        assert_eq!(c.nw(1, 1), 1);
        assert_eq!(c.nt(1), 1);
    }

    #[test]
    fn rows_are_contiguous_views() {
        let c = CountMatrices::new(2, 3, &[1]);
        c.increment(1, 0, 2);
        let row = c.nw_row(1);
        assert_eq!(row.len(), 3);
        assert_eq!(row[2].load(Ordering::Relaxed), 1);
        assert_eq!(c.nd_row(0)[2].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn invariants_detect_consistency() {
        let c = CountMatrices::new(2, 2, &[2]);
        c.increment(0, 0, 0);
        c.increment(1, 0, 1);
        assert!(c.check_invariants());
        // Violate: extra nw bump without nd/nt.
        c.nw_row(0)[0].fetch_add(1, Ordering::Relaxed);
        assert!(!c.check_invariants());
    }

    #[test]
    fn topic_doc_frequency_thresholds() {
        let c = CountMatrices::new(2, 2, &[3, 3]);
        // doc 0: 3 tokens of topic 0; doc 1: 1 token topic 0, 2 topic 1.
        c.increment(0, 0, 0);
        c.increment(0, 0, 0);
        c.increment(0, 0, 0);
        c.increment(0, 1, 0);
        c.increment(1, 1, 1);
        c.increment(1, 1, 1);
        assert_eq!(c.topic_doc_frequency(0, 1), 2);
        assert_eq!(c.topic_doc_frequency(0, 2), 1);
        assert_eq!(c.topic_doc_frequency(1, 1), 1);
        assert_eq!(c.topic_doc_frequency(1, 3), 0);
    }

    #[test]
    fn batched_doc_frequencies_match_per_topic_queries() {
        let c = CountMatrices::new(3, 4, &[5, 4, 3]);
        // Scatter some assignments across docs and topics.
        for (w, d, t, n) in [(0, 0, 0, 3), (1, 0, 2, 2), (2, 1, 2, 4), (0, 2, 1, 3)] {
            for _ in 0..n {
                c.increment(w, d, t);
            }
        }
        for min_tokens in [0, 1, 2, 3, 5] {
            let batched = c.topic_doc_frequencies(min_tokens);
            let individual: Vec<usize> = (0..4)
                .map(|t| c.topic_doc_frequency(t, min_tokens))
                .collect();
            assert_eq!(batched, individual, "min_tokens={min_tokens}");
        }
        // min_tokens = 0 behaves as 1 (a zero threshold would count every
        // document for every topic).
        assert_eq!(c.topic_doc_frequencies(0), c.topic_doc_frequencies(1));
    }

    #[test]
    fn serial_ops_match_atomic_ops() {
        let atomic = CountMatrices::new(3, 2, &[4]);
        let serial = CountMatrices::new(3, 2, &[4]);
        let moves = [(0usize, 0usize, 1usize), (1, 0, 0), (0, 0, 1), (2, 0, 0)];
        for &(w, d, t) in &moves {
            atomic.increment(w, d, t);
            serial.increment_serial(w, d, t);
        }
        atomic.decrement(0, 0, 1);
        serial.decrement_serial(0, 0, 1);
        assert_eq!(atomic.snapshot_nw(), serial.snapshot_nw());
        assert_eq!(atomic.snapshot_nt(), serial.snapshot_nt());
        for t in 0..2 {
            assert_eq!(atomic.nd(0, t), serial.nd(0, t));
        }
    }

    #[test]
    fn load_round_trips_snapshots() {
        let a = CountMatrices::new(3, 2, &[2, 1]);
        a.increment(0, 0, 1);
        a.increment(2, 1, 0);
        let b = CountMatrices::new(3, 2, &[2, 1]);
        b.load_nw_nt(&a.snapshot_nw(), &a.snapshot_nt());
        b.copy_nd_row_from(0, &a, 0);
        b.copy_nd_row_from(1, &a, 1);
        assert_eq!(b.snapshot_nw(), a.snapshot_nw());
        assert_eq!(b.snapshot_nt(), a.snapshot_nt());
        assert_eq!(b.snapshot_nd(), a.snapshot_nd());
    }

    #[test]
    fn shard_deltas_merge_to_consistent_totals() {
        // A "global" 2-word × 2-topic state with two tokens assigned.
        let global = CountMatrices::new(2, 2, &[1, 1]);
        global.increment(0, 0, 0);
        global.increment(1, 1, 1);
        let base_nw = global.snapshot_nw();
        let base_nt = global.snapshot_nt();
        // Two shards start from the snapshot; each moves its own token.
        let mk_shard = |d: usize| {
            let local = CountMatrices::new(2, 2, &[1]);
            local.load_nw_nt(&base_nw, &base_nt);
            local.copy_nd_row_from(0, &global, d);
            local
        };
        let s0 = mk_shard(0);
        s0.decrement(0, 0, 0);
        s0.increment(0, 0, 1); // word 0: topic 0 → 1
        let s1 = mk_shard(1);
        s1.decrement(1, 0, 1);
        s1.increment(1, 0, 0); // word 1: topic 1 → 0
        let mut merged_nw = base_nw.clone();
        let mut merged_nt = base_nt.clone();
        s0.add_deltas_into(&base_nw, &base_nt, &mut merged_nw, &mut merged_nt);
        s1.add_deltas_into(&base_nw, &base_nt, &mut merged_nw, &mut merged_nt);
        global.load_nw_nt(&merged_nw, &merged_nt);
        global.copy_nd_row_from(0, &s0, 0);
        global.copy_nd_row_from(1, &s1, 0);
        // nw[w][t] layout: [w0t0, w0t1, w1t0, w1t1]
        assert_eq!(global.snapshot_nw(), vec![0, 1, 1, 0]);
        assert_eq!(global.snapshot_nt(), vec![1, 1]);
        assert!(global.check_invariants());
    }

    #[test]
    fn snapshots_copy_state() {
        let c = CountMatrices::new(2, 2, &[1]);
        c.increment(1, 0, 0);
        let nw = c.snapshot_nw();
        assert_eq!(nw, vec![0, 0, 1, 0]);
        assert_eq!(c.snapshot_nt(), vec![1, 0]);
        // Later mutation does not affect the snapshot.
        c.increment(0, 0, 1);
        assert_eq!(nw, vec![0, 0, 1, 0]);
    }
}
