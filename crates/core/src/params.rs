//! Model configuration shared by every topic model in the crate.

use crate::error::CoreError;
use crate::sampler::Backend;
use srclda_knowledge::SmoothingConfig;

/// How the λ smoothing function `g` (§III.C.2) is obtained for the full
/// Source-LDA model.
#[derive(Debug, Clone)]
pub enum SmoothingMode {
    /// Estimate `g_t` separately per source topic — Algorithm 1's
    /// "for t = K+1 to T: Calculate gₜ". The faithful (default) mode.
    PerTopic(SmoothingConfig),
    /// Estimate one `g` from the first source topic and share it. Much
    /// cheaper when thousands of source topics have similar count shapes
    /// (used by the Figure 8(f) scaling benchmark).
    Shared(SmoothingConfig),
    /// Use `g(λ) = λ` (the *unsmoothed* behavior of Figure 3).
    Identity,
}

impl Default for SmoothingMode {
    fn default() -> Self {
        SmoothingMode::PerTopic(SmoothingConfig::default())
    }
}

/// What to record during sampling.
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Record the joint log-likelihood every `n` iterations (Figure 6's
    /// traces). `None` disables.
    pub log_likelihood_every: Option<usize>,
    /// Iterations at which to snapshot the full φ matrix (Figure 6 shows
    /// topic images at iterations 1, 20, 50, …, 500).
    pub phi_snapshots: Vec<usize>,
}

/// Hyperparameters and runtime options for a Gibbs run.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Symmetric document–topic prior α.
    pub alpha: f64,
    /// Symmetric word prior β for unlabeled topics.
    pub beta: f64,
    /// Definition 3's ε added to source counts.
    pub epsilon: f64,
    /// Gibbs iterations `I`.
    pub iterations: usize,
    /// RNG seed — every run is a pure function of this seed.
    pub seed: u64,
    /// Sampler backend (serial, Algorithm 2 or Algorithm 3).
    pub backend: Backend,
    /// Trace recording options.
    pub trace: TraceConfig,
    /// Quadrature steps `A` for the λ integral (Eq. 3).
    pub approximation_steps: usize,
    /// Mean µ of the λ prior.
    pub mu: f64,
    /// Standard deviation σ of the λ prior.
    pub sigma: f64,
    /// How to obtain the smoothing function(s) `g`.
    pub smoothing: SmoothingMode,
    /// Every `m` sweeps, re-weight each λ-integrated topic's quadrature
    /// levels with the λ posterior given its current counts — treating λ
    /// as "a hidden parameter of the model" (§III.C.2). `None` keeps the
    /// prior weights fixed (the literal Eq. 3).
    pub lambda_update_every: Option<usize>,
    /// Sweeps to run under the prior quadrature weights before the first
    /// λ adaptation. Adapting from random-initialization counts would read
    /// "every topic is far from its article" (low λ) and flatten the priors
    /// before topic identities form; a burn-in breaks that feedback loop.
    pub lambda_burn_in: usize,
    /// Initialize every λ-integrated topic's quadrature weights one-hot at
    /// the highest λ level (strongest article anchoring), letting the
    /// adaptation relax each topic individually as its data demands.
    pub lambda_optimistic_start: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 0.01,
            epsilon: srclda_knowledge::DEFAULT_EPSILON,
            iterations: 1000,
            seed: 42,
            backend: Backend::Serial,
            trace: TraceConfig::default(),
            approximation_steps: 8,
            // The values the paper found by perplexity minimization for the
            // Reuters experiment (§IV.C).
            mu: 0.7,
            sigma: 0.3,
            smoothing: SmoothingMode::default(),
            lambda_update_every: None,
            lambda_burn_in: 0,
            lambda_optimistic_start: false,
        }
    }
}

impl ModelConfig {
    /// Validate parameter ranges.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> crate::Result<()> {
        for (name, value) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("epsilon", self.epsilon),
            ("sigma", self.sigma),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(CoreError::NonPositiveParameter { name, value });
            }
        }
        if self.iterations == 0 {
            return Err(CoreError::InvalidConfig(
                "iterations must be at least 1".into(),
            ));
        }
        if self.approximation_steps == 0 {
            return Err(CoreError::InvalidConfig(
                "approximation_steps must be at least 1".into(),
            ));
        }
        if self.lambda_update_every == Some(0) {
            return Err(CoreError::InvalidConfig(
                "lambda_update_every must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.mu) {
            return Err(CoreError::InvalidConfig(format!(
                "mu must lie in [0, 1], got {}",
                self.mu
            )));
        }
        self.backend.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ModelConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_parameters() {
        let bad = [
            ModelConfig {
                alpha: 0.0,
                ..ModelConfig::default()
            },
            ModelConfig {
                iterations: 0,
                ..ModelConfig::default()
            },
            ModelConfig {
                approximation_steps: 0,
                ..ModelConfig::default()
            },
            ModelConfig {
                mu: 1.5,
                ..ModelConfig::default()
            },
            ModelConfig {
                sigma: -0.1,
                ..ModelConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "config should be rejected: {c:?}");
        }
    }

    #[test]
    fn rejects_zero_thread_backends() {
        let c = ModelConfig {
            backend: Backend::SimpleParallel { threads: 0 },
            ..ModelConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
