//! Held-out perplexity (§III.C.5a of the paper).
//!
//! Two estimators, matching the paper's citations:
//!
//! * [`gibbs_perplexity`] — "latent variable estimation via Gibbs sampling":
//!   run the collapsed sampler on the held-out documents with the training
//!   counts **frozen** (the `n + ñ` equations of §III.C.5a), then score
//!   `p(w̃) = Σ_t φ_wt θ̃_td` with the training φ and the inferred test θ.
//! * [`importance_sampling_perplexity`] — "importance sampling" (Wallach et
//!   al. 2009): draw θ samples from the prior and average the document
//!   likelihoods in log space.
//!
//! Perplexity is `exp(−Σ ln p(w̃) / Ñ)` over all held-out tokens; lower is
//! better.

use crate::error::CoreError;
use crate::model::FittedModel;
use rand::Rng;
use srclda_corpus::Corpus;
use srclda_math::categorical::binary_search_cumulative;
use srclda_math::special::log_sum_exp;
use srclda_math::{rng_from_seed, Dirichlet};

/// A Gibbs perplexity estimate plus the numeric-guard tallies accumulated
/// while inferring it (see [`gibbs_perplexity_counted`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerplexityEstimate {
    /// `exp(−Σ ln p(w̃) / Ñ)`; lower is better.
    pub perplexity: f64,
    /// Held-out draws whose weight accumulator underflowed (zero or
    /// subnormal) and were recovered by the `2^512` rescale pass. Non-zero
    /// is normal for long, well-explained documents; a *large* fraction
    /// means the estimate leans heavily on the rescue arithmetic.
    pub rescued_draws: u64,
    /// Held-out draws with no representable mass even after rescaling
    /// (structural zeros or non-finite weights) that fell back to a
    /// uniform draw. These weaken the estimate — the inferred θ for the
    /// affected tokens is noise.
    pub zero_mass_draws: u64,
}

/// Counters threaded through [`draw_topic_rescued`].
#[derive(Debug, Default)]
struct DrawTallies {
    rescued: u64,
    zero_mass: u64,
}

/// Gibbs-estimator perplexity.
///
/// # Errors
/// Fails on an empty test corpus or vocabulary mismatch.
pub fn gibbs_perplexity(
    fitted: &FittedModel,
    test: &Corpus,
    iterations: usize,
    seed: u64,
) -> crate::Result<f64> {
    gibbs_perplexity_counted(fitted, test, iterations, seed).map(|e| e.perplexity)
}

/// [`gibbs_perplexity`] returning the estimate together with the
/// underflow-rescue and zero-mass fallback tallies, so telemetry can
/// surface how much of the held-out inference ran on guarded arithmetic.
///
/// # Errors
/// Exactly those of [`gibbs_perplexity`].
pub fn gibbs_perplexity_counted(
    fitted: &FittedModel,
    test: &Corpus,
    iterations: usize,
    seed: u64,
) -> crate::Result<PerplexityEstimate> {
    if test.num_tokens() == 0 {
        return Err(CoreError::EmptyCorpus);
    }
    if test.vocab_size() != fitted.vocab_size() {
        return Err(CoreError::VocabularyMismatch {
            source: fitted.vocab_size(),
            corpus: test.vocab_size(),
        });
    }
    let t_count = fitted.num_topics();
    let alpha = fitted.alpha();
    // Frozen training counts (the un-tilded n's in the held-out equations).
    let frozen_nw = fitted.counts().snapshot_nw();
    let frozen_nt = fitted.counts().snapshot_nt();
    let priors = fitted.priors();

    let tokens: Vec<Vec<u32>> = test
        .docs()
        .iter()
        .map(|d| d.tokens().iter().map(|w| w.0).collect())
        .collect();
    let mut rng = rng_from_seed(seed);
    // Test-side dynamic counts (the tilded ñ's).
    let mut test_nw = vec![0u32; fitted.vocab_size() * t_count];
    let mut test_nt = vec![0u32; t_count];
    let mut test_nd: Vec<Vec<u32>> = tokens.iter().map(|_| vec![0u32; t_count]).collect();
    let mut z: Vec<Vec<u32>> = tokens
        .iter()
        .enumerate()
        .map(|(d, doc)| {
            doc.iter()
                .map(|&w| {
                    let t = rng.gen_range(0..t_count);
                    test_nw[w as usize * t_count + t] += 1;
                    test_nt[t] += 1;
                    test_nd[d][t] += 1;
                    t as u32
                })
                .collect()
        })
        .collect();

    let mut buf = vec![0.0; t_count];
    let mut tallies = DrawTallies::default();
    for _ in 0..iterations.max(1) {
        for (d, doc) in tokens.iter().enumerate() {
            for (j, &word) in doc.iter().enumerate() {
                let w = word as usize;
                let old = z[d][j] as usize;
                test_nw[w * t_count + old] -= 1;
                test_nt[old] -= 1;
                test_nd[d][old] -= 1;
                let new = draw_topic_rescued(&mut buf, &mut rng, &mut tallies, |t, scale| {
                    let nw_eff =
                        frozen_nw[w * t_count + t] as f64 + test_nw[w * t_count + t] as f64;
                    let nt_eff = frozen_nt[t] as f64 + test_nt[t] as f64;
                    (priors[t].word_weight(w, nw_eff, nt_eff) * scale)
                        * ((test_nd[d][t] as f64 + alpha) * scale)
                });
                z[d][j] = new as u32;
                test_nw[w * t_count + new] += 1;
                test_nt[new] += 1;
                test_nd[d][new] += 1;
            }
        }
    }

    // Score with training φ and inferred test θ (the same per-token scorer
    // the online fold-in path uses — see `inference::token_log_likelihood`).
    let phi = fitted.phi();
    let mut log_prob = 0.0;
    let mut n_tokens = 0usize;
    for (d, doc) in tokens.iter().enumerate() {
        let denom = doc.len() as f64 + t_count as f64 * alpha;
        let theta: Vec<f64> = (0..t_count)
            .map(|t| (test_nd[d][t] as f64 + alpha) / denom)
            .collect();
        log_prob += crate::inference::token_log_likelihood(phi, &theta, doc);
        n_tokens += doc.len();
    }
    Ok(PerplexityEstimate {
        perplexity: (-log_prob / n_tokens as f64).exp(),
        rescued_draws: tallies.rescued,
        zero_mass_draws: tallies.zero_mass,
    })
}

/// One conditional topic draw for the held-out sampler, with an underflow
/// rescue pass.
///
/// `weight(t, scale)` must return the unnormalized topic weight with
/// *each* of its two factors (word weight and document factor) multiplied
/// by `scale` — so a product that underflowed to zero at `scale = 1` is
/// recovered at `scale = 2^512` as `weight · 2^1024`, which cannot
/// overflow (both original factors were below `f64::MIN_POSITIVE`'s square
/// root regime for the product to vanish) and lifts any representable
/// product mass back into the normal range.
///
/// The old guard (`acc > 0.0 && acc.is_finite()`) routed a *fully
/// underflowed* accumulator — `acc == 0.0` even though the true
/// conditional is far from uniform — into the uniform fallback, silently
/// destroying the inferred θ for long, well-explained documents. The
/// healthy fast path now also requires `acc >= f64::MIN_POSITIVE`:
/// a subnormal accumulator means every weight is subnormal (the
/// accumulation is non-negative and monotone) and has lost most of its
/// mantissa, so it takes the rescue pass too. Only a state with *no*
/// representable mass at all (structural zeros everywhere, or NaN/∞
/// weights) falls back to uniform, matching the training kernels.
fn draw_topic_rescued<R: Rng, F: FnMut(usize, f64) -> f64>(
    buf: &mut [f64],
    rng: &mut R,
    tallies: &mut DrawTallies,
    mut weight: F,
) -> usize {
    let t_count = buf.len();
    let mut acc = 0.0;
    for (t, slot) in buf.iter_mut().enumerate() {
        acc += weight(t, 1.0);
        *slot = acc;
    }
    if acc >= f64::MIN_POSITIVE && acc.is_finite() {
        let u = rng.gen::<f64>() * acc;
        return binary_search_cumulative(buf, u);
    }
    if acc.is_finite() {
        // Underflow (acc zero or subnormal): rescale both factors of every
        // weight by 2^512 and retry.
        let scale = 2.0f64.powi(512);
        let mut acc = 0.0;
        for (t, slot) in buf.iter_mut().enumerate() {
            acc += weight(t, scale);
            *slot = acc;
        }
        if acc >= f64::MIN_POSITIVE && acc.is_finite() {
            tallies.rescued += 1;
            let u = rng.gen::<f64>() * acc;
            return binary_search_cumulative(buf, u);
        }
    }
    tallies.zero_mass += 1;
    rng.gen_range(0..t_count)
}

/// Importance-sampling perplexity with `samples` θ draws from the `Dir(α)`
/// prior per document.
///
/// # Errors
/// Fails on an empty test corpus or vocabulary mismatch.
pub fn importance_sampling_perplexity(
    fitted: &FittedModel,
    test: &Corpus,
    samples: usize,
    seed: u64,
) -> crate::Result<f64> {
    if test.num_tokens() == 0 {
        return Err(CoreError::EmptyCorpus);
    }
    if test.vocab_size() != fitted.vocab_size() {
        return Err(CoreError::VocabularyMismatch {
            source: fitted.vocab_size(),
            corpus: test.vocab_size(),
        });
    }
    let t_count = fitted.num_topics();
    let samples = samples.max(1);
    let prior = Dirichlet::symmetric(fitted.alpha(), t_count)?;
    let phi = fitted.phi();
    let mut rng = rng_from_seed(seed);
    let mut log_prob = 0.0;
    let mut n_tokens = 0usize;
    let mut theta = vec![0.0; t_count];
    let mut per_sample = vec![0.0; samples];
    for (_, doc) in test.iter() {
        let ids: Vec<u32> = doc.tokens().iter().map(|w| w.0).collect();
        for slot in per_sample.iter_mut() {
            prior.sample_into(&mut rng, &mut theta);
            *slot = crate::inference::token_log_likelihood(phi, &theta, &ids);
        }
        log_prob += log_sum_exp(&per_sample) - (samples as f64).ln();
        n_tokens += doc.len();
    }
    Ok((-log_prob / n_tokens as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::Lda;
    use srclda_corpus::{CorpusBuilder, Tokenizer};

    fn corpora() -> (Corpus, Corpus, Corpus) {
        // Train: two clean themes. In-domain test: same themes. Off-domain
        // test: shuffled mixtures.
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..10 {
            b.add_tokens("a", &["cat", "dog", "pet", "cat"]);
            b.add_tokens("b", &["stock", "bond", "fund", "stock"]);
        }
        b.add_tokens("test-in-1", &["cat", "pet", "dog", "dog"]);
        b.add_tokens("test-in-2", &["bond", "stock", "fund", "bond"]);
        b.add_tokens("test-off-1", &["cat", "stock", "dog", "fund"]);
        b.add_tokens("test-off-2", &["bond", "pet", "fund", "cat"]);
        let all = b.build();
        let train = Corpus::from_parts(all.vocabulary().clone(), all.docs()[..20].to_vec());
        let test_in = Corpus::from_parts(all.vocabulary().clone(), all.docs()[20..22].to_vec());
        let test_off = Corpus::from_parts(all.vocabulary().clone(), all.docs()[22..24].to_vec());
        (train, test_in, test_off)
    }

    fn fit(train: &Corpus) -> FittedModel {
        Lda::builder()
            .topics(2)
            .alpha(0.5)
            .beta(0.1)
            .iterations(100)
            .seed(17)
            .build()
            .unwrap()
            .fit(train)
            .unwrap()
    }

    #[test]
    fn gibbs_perplexity_prefers_in_domain_text() {
        let (train, test_in, test_off) = corpora();
        let fitted = fit(&train);
        let p_in = gibbs_perplexity(&fitted, &test_in, 30, 1).unwrap();
        let p_off = gibbs_perplexity(&fitted, &test_off, 30, 1).unwrap();
        assert!(p_in > 1.0);
        assert!(
            p_in < p_off,
            "in-domain should be less perplexing: {p_in} vs {p_off}"
        );
    }

    #[test]
    fn importance_sampling_agrees_on_ordering() {
        let (train, test_in, test_off) = corpora();
        let fitted = fit(&train);
        let p_in = importance_sampling_perplexity(&fitted, &test_in, 64, 2).unwrap();
        let p_off = importance_sampling_perplexity(&fitted, &test_off, 64, 2).unwrap();
        assert!(p_in < p_off, "{p_in} vs {p_off}");
    }

    #[test]
    fn estimators_are_in_the_same_ballpark() {
        let (train, test_in, _) = corpora();
        let fitted = fit(&train);
        let g = gibbs_perplexity(&fitted, &test_in, 30, 3).unwrap();
        let i = importance_sampling_perplexity(&fitted, &test_in, 128, 3).unwrap();
        let ratio = g / i;
        assert!(
            (0.3..3.0).contains(&ratio),
            "estimators disagree wildly: gibbs {g}, is {i}"
        );
    }

    #[test]
    fn perplexity_bounded_by_vocabulary() {
        // A uniform model cannot beat perplexity V; any model on this corpus
        // must lie within [1, V].
        let (train, test_in, _) = corpora();
        let fitted = fit(&train);
        let v = train.vocab_size() as f64;
        let p = gibbs_perplexity(&fitted, &test_in, 20, 4).unwrap();
        assert!(p >= 1.0 && p <= v * 2.0, "implausible perplexity {p}");
    }

    #[test]
    fn empty_test_corpus_rejected() {
        let (train, _, _) = corpora();
        let fitted = fit(&train);
        let empty = Corpus::from_parts(train.vocabulary().clone(), vec![]);
        assert!(gibbs_perplexity(&fitted, &empty, 10, 1).is_err());
        assert!(importance_sampling_perplexity(&fitted, &empty, 10, 1).is_err());
    }

    #[test]
    fn underflowing_document_is_rescued_not_uniformized() {
        // Regression for the old `acc > 0.0` guard: a document whose every
        // per-topic weight product underflows to exactly 0.0 (word weight
        // ~1e-180, document factor ~1e-180 → true mass ~1e-360, below the
        // smallest subnormal) used to be routed to the *uniform* fallback,
        // erasing a 3:1 conditional. The rescue pass must recover the
        // ratio.
        let word_weights = [1e-180, 3e-180];
        let doc_factor = 1e-180;
        // The unrescued products really do vanish — the precondition of
        // the regression.
        assert_eq!(word_weights[0] * doc_factor, 0.0);
        assert_eq!(word_weights[1] * doc_factor, 0.0);
        let mut rng = rng_from_seed(11);
        let mut buf = vec![0.0; 2];
        let mut tallies = DrawTallies::default();
        let mut hits = [0u32; 2];
        for _ in 0..4000 {
            let t = draw_topic_rescued(&mut buf, &mut rng, &mut tallies, |t, scale| {
                (word_weights[t] * scale) * (doc_factor * scale)
            });
            hits[t] += 1;
        }
        let frac = hits[1] as f64 / 4000.0;
        assert!(
            (frac - 0.75).abs() < 0.05,
            "rescued draw must preserve the 3:1 ratio, got {frac}"
        );
        assert_eq!(tallies.rescued, 4000, "every draw took the rescue pass");
        assert_eq!(tallies.zero_mass, 0);

        // A subnormal (but non-zero) accumulator takes the rescue pass
        // too: precision is already gone at that magnitude.
        let tiny = [2e-320, 6e-320]; // subnormal weights, exact 3:1
        let mut hits = [0u32; 2];
        for _ in 0..4000 {
            let t = draw_topic_rescued(&mut buf, &mut rng, &mut tallies, |t, scale| {
                (tiny[t] * scale) * scale
            });
            hits[t] += 1;
        }
        let frac = hits[1] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.05, "subnormal rescue, got {frac}");
        assert_eq!(tallies.rescued, 8000);
    }

    #[test]
    fn structurally_zero_or_non_finite_mass_still_falls_back_to_uniform() {
        let mut rng = rng_from_seed(3);
        let mut buf = vec![0.0; 3];
        let mut tallies = DrawTallies::default();
        let mut hits = [0u32; 3];
        for _ in 0..3000 {
            let t = draw_topic_rescued(&mut buf, &mut rng, &mut tallies, |_, _| 0.0);
            hits[t] += 1;
        }
        for (t, &h) in hits.iter().enumerate() {
            assert!(
                (700..1300).contains(&h),
                "structural zeros must draw uniformly, topic {t} got {h}"
            );
        }
        assert_eq!(tallies.zero_mass, 3000, "every draw was a uniform fallback");
        assert_eq!(tallies.rescued, 0);
        // NaN weights: no panic, uniform fallback.
        let t = draw_topic_rescued(&mut buf, &mut rng, &mut tallies, |_, _| f64::NAN);
        assert!(t < 3);
        // Infinite mass: likewise.
        let t = draw_topic_rescued(&mut buf, &mut rng, &mut tallies, |_, _| f64::INFINITY);
        assert!(t < 3);
        assert_eq!(tallies.zero_mass, 3002);
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test_in, _) = corpora();
        let fitted = fit(&train);
        let a = gibbs_perplexity(&fitted, &test_in, 15, 7).unwrap();
        let b = gibbs_perplexity(&fitted, &test_in, 15, 7).unwrap();
        assert_eq!(a, b);
    }
}
