//! Generative samplers — the forward direction of the models, used to
//! synthesize ground-truth corpora for the evaluation (§IV.B, §IV.D all
//! generate corpora "following the steps of the generative model").

use crate::error::CoreError;
use rand::Rng;
use srclda_corpus::{Corpus, Document, Vocabulary};
use srclda_knowledge::{KnowledgeSource, SmoothingConfig, SmoothingFunction};
use srclda_math::{
    rng_from_seed, sample_categorical, AliasTable, DenseMatrix, Dirichlet, SldaRng, TruncatedNormal,
};

/// Per-document length model (the paper's step `N_d ~ Poisson(ξ)`; the
/// experiments fix average lengths, so both options are provided).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DocLength {
    /// Every document has exactly `n` tokens.
    Fixed(usize),
    /// `N_d ~ Poisson(ξ)` (resampled if 0).
    Poisson(f64),
}

impl DocLength {
    fn sample(&self, rng: &mut SldaRng) -> usize {
        match *self {
            DocLength::Fixed(n) => n.max(1),
            DocLength::Poisson(xi) => loop {
                let n = sample_poisson(xi, rng);
                if n > 0 {
                    return n;
                }
            },
        }
    }
}

/// Knuth/normal-approximation Poisson sampler.
pub fn sample_poisson(lambda: f64, rng: &mut SldaRng) -> usize {
    debug_assert!(lambda > 0.0);
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let x = lambda + lambda.sqrt() * crate::generative::standard_normal(rng) + 0.5;
        x.max(0.0) as usize
    }
}

fn standard_normal(rng: &mut SldaRng) -> f64 {
    srclda_math::gamma::standard_normal(rng)
}

/// Everything recorded about a synthetic corpus: the ground truth that the
/// evaluation metrics compare against.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// True topic of each token, `[doc][position]` (topic indices follow
    /// the generator's topic order).
    pub assignments: Vec<Vec<u32>>,
    /// True document–topic distributions (`D × T`).
    pub theta: DenseMatrix<f64>,
    /// The actual topic–word distributions used (`T × V`).
    pub phi: DenseMatrix<f64>,
    /// Topic labels (`None` for unlabeled topics).
    pub labels: Vec<Option<String>>,
    /// The λ exponent drawn per topic (1.0 where λ was not used).
    pub lambdas: Vec<f64>,
}

impl GroundTruth {
    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.phi.rows()
    }

    /// Total token count.
    pub fn num_tokens(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }
}

/// A synthetic corpus plus its generation record.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The token streams.
    pub corpus: Corpus,
    /// What generated them.
    pub truth: GroundTruth,
}

/// The plain LDA generative process over *given* topic–word distributions
/// (used by the 5×5 graphical experiment, §IV.A).
#[derive(Debug, Clone)]
pub struct LdaGenerator {
    /// Document–topic Dirichlet α.
    pub alpha: f64,
    /// Number of documents `D`.
    pub num_docs: usize,
    /// Document length model.
    pub doc_len: DocLength,
    /// RNG seed.
    pub seed: u64,
}

impl LdaGenerator {
    /// Generate a corpus from explicit topic rows (each a distribution over
    /// `vocab`).
    ///
    /// # Errors
    /// Fails if `phi_rows` is empty or a row cannot seed an alias table.
    pub fn generate(
        &self,
        phi_rows: &[Vec<f64>],
        labels: &[Option<String>],
        vocab: &Vocabulary,
    ) -> crate::Result<GeneratedCorpus> {
        if phi_rows.is_empty() {
            return Err(CoreError::NoTopics);
        }
        let t_count = phi_rows.len();
        let v = vocab.len();
        let mut rng = rng_from_seed(self.seed);
        let tables: Vec<AliasTable> = phi_rows
            .iter()
            .map(|row| AliasTable::new(row))
            .collect::<Result<_, _>>()?;
        let theta_prior = Dirichlet::symmetric(self.alpha, t_count)?;
        let mut docs = Vec::with_capacity(self.num_docs);
        let mut assignments = Vec::with_capacity(self.num_docs);
        let mut theta = DenseMatrix::zeros(self.num_docs, t_count);
        for d in 0..self.num_docs {
            let n = self.doc_len.sample(&mut rng);
            let th = theta_prior.sample(&mut rng);
            theta.row_mut(d).copy_from_slice(&th);
            let mut tokens = Vec::with_capacity(n);
            let mut zs = Vec::with_capacity(n);
            for _ in 0..n {
                let z = sample_categorical(&th, &mut rng);
                let w = tables[z].sample(&mut rng);
                zs.push(z as u32);
                tokens.push(srclda_corpus::WordId::new(w));
            }
            assignments.push(zs);
            docs.push(Document::named(format!("gen-{d}"), tokens));
        }
        let mut phi = DenseMatrix::zeros(t_count, v);
        for (t, row) in phi_rows.iter().enumerate() {
            phi.row_mut(t).copy_from_slice(row);
        }
        Ok(GeneratedCorpus {
            corpus: Corpus::from_parts(vocab.clone(), docs),
            truth: GroundTruth {
                assignments,
                theta,
                phi,
                labels: labels.to_vec(),
                lambdas: vec![1.0; t_count],
            },
        })
    }
}

/// How λ shapes the source hyperparameters during generation.
#[derive(Debug, Clone)]
pub enum LambdaMode {
    /// No λ: `φ_t ~ Dir(X_t)` (the bijective generative model, §III.A).
    None,
    /// Raw exponent: `φ_t ~ Dir(X_t^{λ_t})`, `λ_t ~ N(µ, σ)` bounded to
    /// `[0, 1]` (§IV.B's corpus).
    Raw,
    /// Smoothed exponent: `φ_t ~ Dir(X_t^{g_t(λ_t)})` — the complete
    /// generative process of §III.C.
    Smoothed(SmoothingConfig),
}

/// The Source-LDA generative process (§III.C steps 1–13): `K` unlabeled
/// topics from `Dir(β)` plus one topic per knowledge-source document.
#[derive(Debug, Clone)]
pub struct SourceLdaGenerator {
    /// Document–topic Dirichlet α.
    pub alpha: f64,
    /// Unlabeled-topic word prior β.
    pub beta: f64,
    /// Definition 3's ε.
    pub epsilon: f64,
    /// Number of unlabeled topics `K`.
    pub unlabeled_topics: usize,
    /// λ prior mean µ.
    pub mu: f64,
    /// λ prior standard deviation σ.
    pub sigma: f64,
    /// λ handling.
    pub lambda_mode: LambdaMode,
    /// Number of documents `D`.
    pub num_docs: usize,
    /// Document length model.
    pub doc_len: DocLength,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SourceLdaGenerator {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.01,
            epsilon: srclda_knowledge::DEFAULT_EPSILON,
            unlabeled_topics: 0,
            mu: 0.5,
            sigma: 1.0,
            lambda_mode: LambdaMode::None,
            num_docs: 100,
            doc_len: DocLength::Fixed(100),
            seed: 42,
        }
    }
}

impl SourceLdaGenerator {
    /// Generate a corpus whose source topics follow `ks`.
    ///
    /// Topic order: `K` unlabeled topics first, then the source topics in
    /// knowledge-source order (matching [`crate::SourceLda`]'s layout).
    ///
    /// # Errors
    /// Fails on an empty knowledge source or degenerate parameters.
    pub fn generate(
        &self,
        ks: &KnowledgeSource,
        vocab: &Vocabulary,
    ) -> crate::Result<GeneratedCorpus> {
        if ks.is_empty() && self.unlabeled_topics == 0 {
            return Err(CoreError::NoTopics);
        }
        if ks.vocab_size() != vocab.len() {
            return Err(CoreError::VocabularyMismatch {
                source: ks.vocab_size(),
                corpus: vocab.len(),
            });
        }
        let v = vocab.len();
        let k = self.unlabeled_topics;
        let t_count = k + ks.len();
        let mut rng = rng_from_seed(self.seed);
        let lambda_prior = TruncatedNormal::unit_interval(self.mu, self.sigma)?;

        let mut phi = DenseMatrix::zeros(t_count, v);
        let mut labels: Vec<Option<String>> = Vec::with_capacity(t_count);
        let mut lambdas = vec![1.0; t_count];
        // Unlabeled topics: φ ~ Dir(β).
        let beta_prior = Dirichlet::symmetric(self.beta, v)?;
        for t in 0..k {
            let row = beta_prior.sample(&mut rng);
            phi.row_mut(t).copy_from_slice(&row);
            labels.push(None);
        }
        // Source topics: φ ~ Dir(δ) with δ per the λ mode.
        for (s, topic) in ks.topics().iter().enumerate() {
            let t = k + s;
            let delta = match &self.lambda_mode {
                LambdaMode::None => topic.hyperparameters(self.epsilon),
                LambdaMode::Raw => {
                    let lam = lambda_prior.sample(&mut rng);
                    lambdas[t] = lam;
                    topic.powered_hyperparameters(self.epsilon, lam)
                }
                LambdaMode::Smoothed(cfg) => {
                    let lam = lambda_prior.sample(&mut rng);
                    lambdas[t] = lam;
                    let g = SmoothingFunction::estimate(topic, self.epsilon, cfg, &mut rng);
                    topic.powered_hyperparameters(self.epsilon, g.eval(lam))
                }
            };
            let row = Dirichlet::new(delta)?.sample(&mut rng);
            phi.row_mut(t).copy_from_slice(&row);
            labels.push(Some(topic.label().to_string()));
        }

        let tables: Vec<AliasTable> = (0..t_count)
            .map(|t| AliasTable::new(phi.row(t)))
            .collect::<Result<_, _>>()?;
        let theta_prior = Dirichlet::symmetric(self.alpha, t_count)?;
        let mut docs = Vec::with_capacity(self.num_docs);
        let mut assignments = Vec::with_capacity(self.num_docs);
        let mut theta = DenseMatrix::zeros(self.num_docs, t_count);
        for d in 0..self.num_docs {
            let n = self.doc_len.sample(&mut rng);
            let th = theta_prior.sample(&mut rng);
            theta.row_mut(d).copy_from_slice(&th);
            let mut tokens = Vec::with_capacity(n);
            let mut zs = Vec::with_capacity(n);
            for _ in 0..n {
                let z = sample_categorical(&th, &mut rng);
                let w = tables[z].sample(&mut rng);
                zs.push(z as u32);
                tokens.push(srclda_corpus::WordId::new(w));
            }
            assignments.push(zs);
            docs.push(Document::named(format!("gen-{d}"), tokens));
        }
        Ok(GeneratedCorpus {
            corpus: Corpus::from_parts(vocab.clone(), docs),
            truth: GroundTruth {
                assignments,
                theta,
                phi,
                labels,
                lambdas,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_knowledge::SourceTopic;

    fn vocab(n: usize) -> Vocabulary {
        Vocabulary::from_words((0..n).map(|i| format!("word{i}")))
    }

    #[test]
    fn poisson_moments() {
        let mut rng = rng_from_seed(3);
        for &lam in &[0.5, 4.0, 50.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| sample_poisson(lam, &mut rng) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lam).abs() < lam.max(1.0) * 0.05,
                "λ={lam}: mean {mean}"
            );
        }
    }

    #[test]
    fn lda_generator_produces_consistent_corpus() {
        let v = vocab(6);
        let phi = vec![
            vec![0.5, 0.5, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.5, 0.5],
        ];
        let generated = LdaGenerator {
            alpha: 1.0,
            num_docs: 20,
            doc_len: DocLength::Fixed(25),
            seed: 1,
        }
        .generate(&phi, &[None, None], &v)
        .unwrap();
        assert_eq!(generated.corpus.num_docs(), 20);
        assert_eq!(generated.corpus.num_tokens(), 500);
        assert_eq!(generated.truth.num_tokens(), 500);
        // Every token's word must be inside its true topic's support.
        for (d, doc) in generated.corpus.docs().iter().enumerate() {
            for (j, &w) in doc.tokens().iter().enumerate() {
                let z = generated.truth.assignments[d][j] as usize;
                assert!(generated.truth.phi[(z, w.index())] > 0.0);
            }
        }
    }

    #[test]
    fn source_generator_respects_topic_order_and_labels() {
        let v = vocab(8);
        let ks = KnowledgeSource::new(vec![
            SourceTopic::new("A", vec![10.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            SourceTopic::new("B", vec![0.0, 0.0, 10.0, 10.0, 0.0, 0.0, 0.0, 0.0]),
        ]);
        let generated = SourceLdaGenerator {
            unlabeled_topics: 2,
            num_docs: 10,
            doc_len: DocLength::Fixed(30),
            seed: 5,
            ..SourceLdaGenerator::default()
        }
        .generate(&ks, &v)
        .unwrap();
        assert_eq!(generated.truth.num_topics(), 4);
        assert_eq!(generated.truth.labels[0], None);
        assert_eq!(generated.truth.labels[2].as_deref(), Some("A"));
        assert_eq!(generated.truth.labels[3].as_deref(), Some("B"));
    }

    #[test]
    fn bijective_generation_tracks_source_distributions() {
        // With big counts and no λ, generated φ stays close to the source
        // distribution (paper Fig. 2's observation).
        let v = vocab(4);
        let ks = KnowledgeSource::new(vec![SourceTopic::new("T", vec![800.0, 150.0, 40.0, 10.0])]);
        let generated = SourceLdaGenerator {
            num_docs: 1,
            doc_len: DocLength::Fixed(10),
            seed: 9,
            ..SourceLdaGenerator::default()
        }
        .generate(&ks, &v)
        .unwrap();
        let js =
            srclda_math::js_divergence(generated.truth.phi.row(0), &ks.topic(0).distribution())
                .unwrap();
        assert!(js < 0.05, "JS divergence too large: {js}");
    }

    #[test]
    fn raw_lambda_mode_records_lambdas() {
        let v = vocab(5);
        let ks = KnowledgeSource::new(vec![
            SourceTopic::new("A", vec![50.0, 5.0, 0.0, 0.0, 0.0]),
            SourceTopic::new("B", vec![0.0, 0.0, 50.0, 5.0, 0.0]),
        ]);
        let generated = SourceLdaGenerator {
            lambda_mode: LambdaMode::Raw,
            mu: 0.5,
            sigma: 1.0,
            num_docs: 3,
            doc_len: DocLength::Fixed(10),
            seed: 11,
            ..SourceLdaGenerator::default()
        }
        .generate(&ks, &v)
        .unwrap();
        for &lam in &generated.truth.lambdas {
            assert!((0.0..=1.0).contains(&lam));
        }
        // At least one λ must differ from the default 1.0.
        assert!(generated.truth.lambdas.iter().any(|&l| l < 1.0));
    }

    #[test]
    fn poisson_doc_lengths_vary() {
        let v = vocab(4);
        let ks = KnowledgeSource::new(vec![SourceTopic::new("T", vec![5.0, 5.0, 5.0, 5.0])]);
        let generated = SourceLdaGenerator {
            num_docs: 30,
            doc_len: DocLength::Poisson(20.0),
            seed: 13,
            ..SourceLdaGenerator::default()
        }
        .generate(&ks, &v)
        .unwrap();
        let lens: Vec<usize> = generated.corpus.docs().iter().map(|d| d.len()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(min != max, "Poisson lengths should vary: {lens:?}");
        assert!(lens.iter().all(|&l| l > 0));
    }

    #[test]
    fn vocabulary_mismatch_rejected() {
        let v = vocab(4);
        let ks = KnowledgeSource::new(vec![SourceTopic::new("T", vec![1.0, 1.0])]);
        let result = SourceLdaGenerator::default().generate(&ks, &v);
        assert!(matches!(result, Err(CoreError::VocabularyMismatch { .. })));
    }
}
