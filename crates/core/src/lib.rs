//! The Source-LDA topic models and collapsed Gibbs samplers.
//!
//! This crate implements the paper's primary contribution and every model it
//! evaluates against, all on one shared Gibbs engine:
//!
//! * [`lda::Lda`] — classic latent Dirichlet allocation (collapsed Gibbs);
//! * [`source_lda::SourceLda`] — the paper's model, in its three variants
//!   ([`source_lda::Variant`]): **Bijective** (§III.A), **Mixture** (§III.B)
//!   and **Full** (§III.C, λ integrated out numerically over a per-topic
//!   smoothing function);
//! * [`eda::Eda`] — explicit Dirichlet allocation (topics frozen at the
//!   knowledge-source distributions);
//! * [`ctm::Ctm`] — the concept-topic model (tokens may only be assigned to
//!   concepts whose word bag contains them).
//!
//! The engine ([`model::GibbsModel`]) owns count matrices ([`counts`]),
//! per-topic word priors ([`prior::TopicPrior`]) and a sampler backend
//! ([`sampler::Backend`]): the serial sampler (dense reference and
//! optimized-kernel forms), the paper's Algorithm 2 (prefix-sums parallel
//! sampling) and Algorithm 3 (simple parallel sampling),
//! document-sharded AD-LDA training, and the sub-linear SparseLDA bucket
//! kernel (O(k_d + k_w) per token instead of O(T)). Supporting modules
//! provide the joint log-likelihood
//! ([`loglik`]), held-out perplexity ([`perplexity`]), online fold-in
//! inference for serving trained models ([`inference`]), serializable
//! mirrors of model internals ([`persist`]), superset topic reduction
//! ([`reduction`], §III.C.3) and the generative samplers used to
//! synthesize ground-truth corpora ([`generative`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counts;
pub mod ctm;
pub mod eda;
pub mod error;
pub mod generative;
pub mod inference;
pub mod lda;
pub mod loglik;
pub mod model;
pub mod params;
pub mod perplexity;
pub mod persist;
pub mod prior;
pub mod reduction;
pub mod sampler;
pub mod source_lda;
pub mod sync;

pub use counts::CountMatrices;
pub use ctm::Ctm;
pub use eda::Eda;
pub use error::CoreError;
pub use inference::{FoldInConfig, Inference, InferredDocument};
pub use lda::Lda;
pub use model::{FittedModel, GibbsModel};
pub use params::{ModelConfig, SmoothingMode, TraceConfig};
pub use persist::{RawIntegrationLayout, RawIntegrationTable, RawPrior, TrainCheckpoint};
pub use sampler::{Backend, KernelKind};
pub use source_lda::{SourceLda, Variant};

/// Convenient `Result` alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// One-stop imports for typical usage.
pub mod prelude {
    pub use crate::ctm::Ctm;
    pub use crate::eda::Eda;
    pub use crate::generative::{GeneratedCorpus, LdaGenerator, SourceLdaGenerator};
    pub use crate::inference::{FoldInConfig, Inference, InferredDocument};
    pub use crate::lda::Lda;
    pub use crate::model::{FittedModel, GibbsModel};
    pub use crate::params::{ModelConfig, SmoothingMode, TraceConfig};
    pub use crate::perplexity::{
        gibbs_perplexity, gibbs_perplexity_counted, importance_sampling_perplexity,
        PerplexityEstimate,
    };
    pub use crate::reduction::{ReducedModel, ReductionPolicy};
    pub use crate::sampler::{Backend, KernelKind};
    pub use crate::source_lda::{SourceLda, Variant};
    pub use crate::CoreError;
}
