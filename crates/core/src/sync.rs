//! Lock-free synchronization primitives for the parallel samplers.
//!
//! The paper's Algorithms 2 and 3 synchronize threads at barriers *inside
//! the per-token sampling step* — potentially millions of times per Gibbs
//! iteration. OS-level barriers (futex park/unpark) would dominate the
//! runtime, so we use a sense-reversing **spin barrier** and share `f64`
//! probability buffers through relaxed atomics (plain loads/stores on
//! x86-64). Memory ordering between phases is established by the barrier's
//! acquire/release pair.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A reusable sense-reversing spin barrier for a fixed number of threads.
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Barrier for `n` participating threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        Self {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block (spinning) until all `n` threads have called `wait` for the
    /// current generation. Returns `true` for exactly one thread per
    /// generation (the last to arrive), mirroring `std::sync::Barrier`.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(1024) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            false
        }
    }
}

/// A shared `f64` buffer backed by `AtomicU64` bit-casts.
///
/// Used for the per-token probability vector that all sampler threads write
/// (their topic ranges) and read (the binary-search phase). All accesses are
/// `Relaxed`; cross-thread visibility is sequenced by [`SpinBarrier::wait`].
#[derive(Debug)]
pub struct SharedF64Buffer {
    cells: Vec<AtomicU64>,
}

impl SharedF64Buffer {
    /// Zero-initialized buffer of length `n`.
    pub fn new(n: usize) -> Self {
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, || AtomicU64::new(0));
        Self { cells }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: f64) {
        self.cells[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Copy the whole buffer out (test/diagnostic use).
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Binary search for the smallest index with `buf[i] > u`, assuming the
    /// buffer holds inclusive prefix sums (the `Binary Search(p)` step of
    /// Algorithms 2 and 3).
    pub fn binary_search_cumulative(&self, u: f64) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.get(mid) > u {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo.min(self.len().saturating_sub(1))
    }
}

/// A single shared `f64` cell (used to publish the sampled uniform and
/// chunk offsets between phases).
#[derive(Debug)]
pub struct SharedF64Cell(AtomicU64);

impl SharedF64Cell {
    /// New cell holding `value`.
    pub fn new(value: f64) -> Self {
        Self(AtomicU64::new(value.to_bits()))
    }

    /// Read the value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Write the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }
}

/// A shared `usize` cell (publishes the sampled topic index).
#[derive(Debug)]
pub struct SharedUsizeCell(AtomicUsize);

impl SharedUsizeCell {
    /// New cell holding `value`.
    pub fn new(value: usize) -> Self {
        Self(AtomicUsize::new(value))
    }

    /// Read the value.
    #[inline]
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    /// Write the value.
    #[inline]
    pub fn set(&self, value: usize) {
        self.0.store(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn barrier_single_thread_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // Each of 4 threads increments a phase counter between barriers;
        // after each barrier every thread must observe the full increment.
        let threads = 4;
        let barrier = SpinBarrier::new(threads);
        let counter = AtomicUsize::new(0);
        let rounds = 200;
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    for r in 1..=rounds {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        assert_eq!(counter.load(Ordering::SeqCst), r * threads);
                        barrier.wait();
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn barrier_leader_is_unique() {
        let threads = 3;
        let barrier = SpinBarrier::new(threads);
        let leaders = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        barrier.wait();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(leaders.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn shared_buffer_round_trips() {
        let buf = SharedF64Buffer::new(4);
        assert_eq!(buf.len(), 4);
        buf.set(2, 3.75);
        assert_eq!(buf.get(2), 3.75);
        assert_eq!(buf.get(0), 0.0);
        assert_eq!(buf.snapshot(), vec![0.0, 0.0, 3.75, 0.0]);
    }

    #[test]
    fn shared_buffer_binary_search() {
        let buf = SharedF64Buffer::new(4);
        for (i, v) in [1.0, 3.0, 6.0, 10.0].into_iter().enumerate() {
            buf.set(i, v);
        }
        assert_eq!(buf.binary_search_cumulative(0.5), 0);
        assert_eq!(buf.binary_search_cumulative(1.0), 1);
        assert_eq!(buf.binary_search_cumulative(5.9), 2);
        assert_eq!(buf.binary_search_cumulative(9.99), 3);
        assert_eq!(buf.binary_search_cumulative(10.0), 3);
    }

    #[test]
    fn cells_round_trip() {
        let f = SharedF64Cell::new(1.5);
        assert_eq!(f.get(), 1.5);
        f.set(-2.25);
        assert_eq!(f.get(), -2.25);
        let u = SharedUsizeCell::new(7);
        assert_eq!(u.get(), 7);
        u.set(42);
        assert_eq!(u.get(), 42);
    }
}
