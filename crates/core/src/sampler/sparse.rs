//! The sub-linear **bucket** Gibbs kernel
//! ([`Backend::SparseKernel`](crate::sampler::Backend::SparseKernel)):
//! a SparseLDA-style (Yao, Mimno & McCallum, KDD'09) decomposition of the
//! per-token sampling weight, generalized to every prior kind of the
//! Source-LDA family.
//!
//! ## The decomposition
//!
//! The serial kernel evaluates, per (token, topic),
//! `weight(t) = word_weight(w, n_wt, n_t) · (n_dt + α)` — O(T) per token.
//! Every prior kind factors its word weight as
//!
//! ```text
//! word_weight(w, nw, nt) = base0(t) + dev_w(t) + nw · coef_w(t)
//! ```
//!
//! where `base0(t)` is a **word-independent baseline** (the weight of a
//! generic zero-count word), `dev_w(t)` is non-zero only for the few words
//! that deviate from the baseline (a source topic's support), and the `nw`
//! term is non-zero only where the word is currently assigned. Distributing
//! the document factor `(n_dt + α) = α + n_dt` splits the total mass into
//! three buckets:
//!
//! ```text
//! s = α · Σ_t base0(t)                   smoothing bucket — cached scalar
//! r = Σ_{t: n_dt>0} n_dt · base0(t)      doc bucket — cached scalar
//! q = Σ_t (dev_w(t) + nw·coef_w(t)) · (n_dt + α)   word bucket — computed
//! ```
//!
//! `s` and `r` are patched for only the (at most two) topics whose counts a
//! token move changes; `q` walks the word's **deviation list** (support
//! membership, built once per model) and its **non-zero assignment list**
//! (maintained incrementally, sorted by topic). Per-token cost is
//! O(k_w + k_d) instead of O(T).
//!
//! Per kind, the baseline is chosen so every `dev_w` is **non-negative**
//! (the q-bucket cumulative stays monotone):
//!
//! | kind       | `base0(t)`          | deviating words  | `coef_w(t)`       |
//! |------------|---------------------|------------------|-------------------|
//! | Symmetric  | `β·r_t`             | none             | `r_t`             |
//! | Fixed      | `δ_min·r_t`         | `δ_w ≠ δ_min`    | `r_t`             |
//! | Integrated | `S2(floor_t)`       | `δ-row ≠ floor`  | `S1(t)`           |
//! | Frozen     | `φ_min`             | `φ_w ≠ φ_min`    | 0                 |
//! | ConceptSet | 0                   | concept bag      | `r_t` in-set, else 0 |
//!
//! (`r_t` and `S1` are the serial kernel's cached reciprocals —
//! [`RecipCache`] is shared verbatim; `floor_t` is the per-level
//! element-wise minimum over every word's δ row, so in the normal regime
//! it *is* the shared off-support row and the deviating words are exactly
//! the source support.) Baselines are **min-valued by construction** —
//! derived only from row values, never from the integration table's layout
//! hints, which a checkpoint round-trip drops — so `dev_w ≥ 0` always and
//! a resumed chain routes every draw exactly like the uninterrupted one. A
//! λ-integrated topic where most words deviate from the floor (pathological
//! δ structure) is demoted to a **dense topic**: its full weight is
//! evaluated in the q bucket for every token — correct, just not
//! sub-linear for that topic.
//!
//! ## Equivalence contract: distribution-level, not bit-level
//!
//! The bucket walk re-associates the same per-topic masses in a different
//! order than the dense prefix sum, and routes the single per-token uniform
//! through bucket thresholds, so the chain is **not** bit-equal to
//! `Backend::Serial` — it is a different, equally valid sampler of the same
//! conditional distribution. The contract is therefore:
//!
//! * per-token bucket mass ≡ dense total mass (property-tested per prior
//!   kind to 1e-9 relative, below);
//! * held-out perplexity parity with `Backend::Serial` within a relative
//!   band (`tests/kernel_equivalence.rs`);
//! * full determinism: the chain is a pure function of the seed, and chunk
//!   boundaries (λ-adaptation, checkpoints) never perturb it — `r` is
//!   rebuilt per document, `s` per sweep, and the non-zero lists are kept
//!   sorted so an incrementally-maintained list is bit-identical to one
//!   rebuilt from the counts.

use super::kernel::{Kind, RecipCache, SweepTables};
use super::{idx_u32, SweepContext};
use crate::counts::CountMatrices;
use crate::prior::{dot_mod4, TopicPrior};
use rand::Rng;
use srclda_math::categorical::binary_search_cumulative;
use srclda_math::SldaRng;
use std::cell::Cell;
use std::sync::atomic::Ordering;

/// Reusable sparse-kernel state carried across sweep chunks (the analogue
/// of the serial kernel's `Combined` reuse): the per-word deviation lists
/// and baseline structure (functions of the priors' *shape*, which λ
/// adaptation never changes), the per-word non-zero assignment lists
/// (maintained in lock-step with the counts, which only the kernel itself
/// mutates between chunk boundaries), and the count-dependent caches — the
/// reciprocal cache and the per-topic minimum-weight baselines `base0(t)`
/// — kept valid across chunks through an explicit invalidation API:
///
/// * between plain chunk boundaries (checkpoints) nothing changed, so the
///   caches are taken as-is;
/// * at a λ-adaptation boundary the fitting loop calls
///   [`Self::repatch_adapted`], which re-derives only the *adapted*
///   (λ-integrated) topics' reciprocal rows and baselines instead of
///   rebuilding every topic;
/// * the sharded execution path reloads its local counts from the global
///   snapshot every sweep and calls [`Self::resync_counts`] to re-derive
///   the count-dependent parts wholesale.
///
/// Every path is debug-asserted bit-equal to a from-scratch rebuild in
/// [`SparseKernel::new`].
pub(crate) struct SparseState {
    /// Per-word topic lists where the word deviates from the topic's
    /// baseline (sorted ascending; built once from the priors).
    exc: Vec<Vec<u32>>,
    /// Per-word sorted topic lists where `n_wt > 0` (incrementally
    /// maintained; rebuild from counts is bit-identical by sortedness).
    nz: Vec<Vec<u32>>,
    /// Topics whose full weight must be evaluated per token (λ-integrated
    /// topics without a usable off-support baseline). Sorted.
    dense_topics: Vec<u32>,
    /// O(1) membership mirror of `dense_topics`.
    dense_flag: Vec<bool>,
    /// Per-topic baseline parameter: `δ_min` (Fixed), `φ_min` (Frozen),
    /// 0.0 otherwise.
    base_param: Vec<f64>,
    /// Per *integrated* topic (indexed like `SweepTables::ints`): the
    /// per-level element-wise floor of every word's δ row — the baseline
    /// the bucket decomposition subtracts. Empty for dense-demoted topics.
    int_floor: Vec<Vec<f64>>,
    /// Shape fingerprint for reuse validation: per-topic kind tag (with the
    /// dense-demotion bit) — a mismatch means different priors, rebuild.
    tags: Vec<u8>,
    vocab: usize,
    /// The serial kernel's reciprocal cache (denominator reciprocals and,
    /// for λ-integrated topics, the per-level quadrature products) at the
    /// current counts. Maintained per token by the sweep; re-derived for
    /// adapted topics by [`Self::repatch_adapted`].
    recip: RecipCache,
    /// `base0(t)` — the per-topic minimum word weight the bucket
    /// decomposition subtracts — at the current counts and quadrature
    /// weights. Maintained in lock-step with `recip`.
    base0: Vec<f64>,
}

impl SparseState {
    /// Build from the flattened priors and current counts.
    pub(crate) fn build(tables: &SweepTables<'_>, counts: &CountMatrices) -> Self {
        let t_count = tables.num_topics();
        let v = counts.vocab_size();
        let mut state = Self {
            exc: vec![Vec::new(); v],
            nz: vec![Vec::new(); v],
            dense_topics: Vec::new(),
            dense_flag: vec![false; t_count],
            base_param: vec![0.0; t_count],
            int_floor: vec![Vec::new(); tables.ints.len()],
            tags: vec![0; t_count],
            vocab: v,
            recip: RecipCache::new(tables, counts),
            base0: vec![0.0; t_count],
        };
        for t in 0..t_count {
            match tables.kinds[t] {
                Kind::Symmetric => {}
                Kind::Fixed(_) | Kind::Frozen(_) => {
                    let row = &tables.rows[t][..v];
                    let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
                    state.base_param[t] = if min.is_finite() { min } else { 0.0 };
                    for (w, &x) in row.iter().enumerate() {
                        if x != state.base_param[t] {
                            state.exc[w].push(idx_u32(t));
                        }
                    }
                }
                Kind::ConceptSet(_) => {
                    for (w, &in_set) in tables.masks[t].iter().enumerate().take(v) {
                        if in_set {
                            state.exc[w].push(idx_u32(t));
                        }
                    }
                }
                Kind::Integrated(i) => {
                    // Baseline: the per-level element-wise floor of every
                    // word's δ row. Derived from the row *values* alone —
                    // never from the table's layout hints (`zero_row`,
                    // `is_off_support`), which a checkpoint round-trip
                    // drops for the dense layout. The bucket structure
                    // must be a pure function of data that persists, or a
                    // resumed chain would route draws differently than the
                    // uninterrupted one. The floor guarantees every
                    // `dev_w = S2_w − S2_floor ≥ 0`, keeping the q-bucket
                    // cumulative monotone.
                    if v == 0 {
                        continue;
                    }
                    let table = tables.ints[i as usize].table;
                    let mut floor = table.delta_row(0).to_vec();
                    for w in 1..v {
                        for (f, &x) in floor.iter_mut().zip(table.delta_row(w)) {
                            if x < *f {
                                *f = x;
                            }
                        }
                    }
                    // In the healthy regime the floor is the shared
                    // off-support row and only the support deviates. If
                    // most words deviate (pathological δ structure), the
                    // exc walk would cost O(V) per token — demote the
                    // topic to per-token dense evaluation instead.
                    let deviating: Vec<u32> = (0..idx_u32(v))
                        .filter(|&w| {
                            table
                                .delta_row(w as usize)
                                .iter()
                                .zip(&floor)
                                .any(|(&x, &f)| x != f)
                        })
                        .collect();
                    if deviating.len() * 2 > v {
                        state.dense_topics.push(idx_u32(t));
                        state.dense_flag[t] = true;
                    } else {
                        for &w in &deviating {
                            state.exc[w as usize].push(idx_u32(t));
                        }
                        state.int_floor[i as usize] = floor;
                    }
                }
            }
            state.tags[t] = match tables.kinds[t] {
                Kind::Symmetric => 1,
                Kind::Fixed(_) => 2,
                Kind::Integrated(_) => {
                    if state.dense_flag[t] {
                        7
                    } else {
                        3
                    }
                }
                Kind::Frozen(_) => 4,
                Kind::ConceptSet(_) => 5,
            };
        }
        for w in 0..v {
            for t in 0..t_count {
                if counts.nw(w, t) > 0 {
                    state.nz[w].push(idx_u32(t));
                }
            }
        }
        for t in 0..t_count {
            state.base0[t] = state.compute_base0(tables, t);
        }
        state
    }

    /// `base0(t)` from the current reciprocal cache (see the kind table in
    /// the module docs).
    #[inline]
    fn compute_base0(&self, tables: &SweepTables<'_>, t: usize) -> f64 {
        match tables.kinds[t] {
            Kind::Symmetric => tables.add[t] * self.recip.recip[t],
            Kind::Fixed(_) => self.base_param[t] * self.recip.recip[t],
            Kind::Integrated(i) => {
                if self.dense_flag[t] {
                    0.0
                } else {
                    // S2 at the floor row, under the current quadrature
                    // weights (A is a handful of levels — recomputing the
                    // dot at each refresh is cheaper than caching another
                    // per-topic invalidation path).
                    let f = &tables.ints[i as usize];
                    let qr = &self.recip.qr[f.qr_base..f.qr_base + f.levels];
                    dot_mod4(&self.int_floor[i as usize], qr)
                }
            }
            Kind::Frozen(_) => self.base_param[t],
            Kind::ConceptSet(_) => 0.0,
        }
    }

    /// Refresh topic `t`'s reciprocal row for the given topic total, then
    /// re-derive its baseline — the single per-topic invalidation step
    /// every cache path routes through.
    #[inline]
    fn refresh_topic(&mut self, tables: &SweepTables<'_>, t: usize, nt: u32) {
        self.recip.refresh(tables, t, nt);
        self.base0[t] = self.compute_base0(tables, t);
    }

    /// Invalidation API for λ-adaptation boundaries: the adapter re-weights
    /// the quadrature of every λ-integrated topic (and nothing else — δ
    /// rows, deviation lists, and the floor structure are untouched), so
    /// only those topics' reciprocal rows and baselines are re-derived.
    /// Everything else in the cache is bit-valid as maintained — verified
    /// against a from-scratch rebuild by the debug assertion in
    /// [`SparseKernel::new`].
    pub(crate) fn repatch_adapted(&mut self, priors: &[TopicPrior], counts: &CountMatrices) {
        let tables = SweepTables::new(priors);
        for t in 0..tables.num_topics() {
            if matches!(tables.kinds[t], Kind::Integrated(_)) {
                self.refresh_topic(&tables, t, counts.nt(t));
            }
        }
    }

    /// Invalidation API for the sharded execution path: the shard's local
    /// counts were just reloaded from the sweep-start global snapshot, so
    /// every count-dependent cache — the non-zero lists, the reciprocal
    /// cache, and the baselines — is re-derived wholesale. The structural
    /// parts (deviation lists, floors, dense demotions) are count-free and
    /// survive untouched.
    pub(crate) fn resync_counts(&mut self, tables: &SweepTables<'_>, counts: &CountMatrices) {
        let t_count = tables.num_topics();
        for (w, list) in self.nz.iter_mut().enumerate() {
            list.clear();
            for t in 0..t_count {
                if counts.nw(w, t) > 0 {
                    list.push(idx_u32(t));
                }
            }
        }
        self.recip = RecipCache::new(tables, counts);
        for t in 0..t_count {
            self.base0[t] = self.compute_base0(tables, t);
        }
    }

    /// Whether this cached state belongs to the same model shape. The
    /// non-zero lists are trusted to be in sync with the counts — within
    /// one fit nothing else mutates them between chunks (verified by a
    /// debug assertion in [`SparseKernel::new`]).
    fn matches(&self, tables: &SweepTables<'_>, counts: &CountMatrices) -> bool {
        self.vocab == counts.vocab_size()
            && self.tags.len() == tables.num_topics()
            && tables.kinds.iter().enumerate().all(|(t, k)| {
                let tag = match k {
                    Kind::Symmetric => 1,
                    Kind::Fixed(_) => 2,
                    Kind::Integrated(_) => {
                        if self.dense_flag[t] {
                            7
                        } else {
                            3
                        }
                    }
                    Kind::Frozen(_) => 4,
                    Kind::ConceptSet(_) => 5,
                };
                self.tags[t] == tag
            })
    }

    #[inline]
    fn nz_insert(&mut self, w: usize, t: usize) {
        let list = &mut self.nz[w];
        let pos = list.partition_point(|&x| (x as usize) < t);
        list.insert(pos, idx_u32(t));
    }

    #[inline]
    fn nz_remove(&mut self, w: usize, t: usize) {
        let list = &mut self.nz[w];
        let pos = list.partition_point(|&x| (x as usize) < t);
        debug_assert!(pos < list.len() && list[pos] as usize == t);
        list.remove(pos);
    }
}

/// The bucket kernel for one chunk of sweeps. Mirrors the serial
/// [`Kernel`](super::kernel::Kernel) lifecycle: build once per
/// [`run_sweeps`](super::run_sweeps) call, surrender the reusable state
/// with [`Self::into_state`] afterwards.
pub(crate) struct SparseKernel<'a> {
    tables: SweepTables<'a>,
    /// Bucket caches — deviation/non-zero lists, reciprocal cache, and
    /// baselines — owned by the reusable state so they survive chunk and
    /// λ-adaptation boundaries (see [`SparseState`]).
    state: SparseState,
    /// Cached smoothing-bucket mass `α · Σ_t base0(t)`; patched per token,
    /// rebuilt at every sweep start to cap float drift (sweeps are the
    /// chunking unit, so the rebuild schedule is chunk-invariant).
    s: f64,
    /// Cached doc-bucket mass `Σ_{active} n_dt · base0(t)`; patched per
    /// token, rebuilt on document entry.
    r: f64,
    /// `n_dt as f64 + α` per topic (α everywhere outside the current doc).
    fact: Vec<f64>,
    nd_doc: Vec<u32>,
    /// Unique topics of the current document (uniqueness via `in_active`,
    /// so the doc-bucket walk never double-counts).
    active: Vec<u32>,
    in_active: Vec<bool>,
    /// Scratch: q-bucket term topics and inclusive cumulative masses.
    term_topic: Vec<u32>,
    term_cum: Vec<f64>,
    alpha: f64,
    /// Bucket-routing tallies for the sweep in progress — telemetry only,
    /// snapshotted by [`Self::take_bucket_counts`]. `Cell` because
    /// [`Self::select`] routes draws through `&self`.
    tally_q: Cell<u64>,
    tally_r: Cell<u64>,
    tally_s: Cell<u64>,
    tally_fallback: Cell<u64>,
}

impl<'a> SparseKernel<'a> {
    /// Build the kernel, reusing a previous chunk's [`SparseState`] when
    /// its shape matches. The reused state's count-dependent caches
    /// (non-zero lists, reciprocal cache, baselines) are taken **as-is**:
    /// between chunks they were either maintained in lock-step by the
    /// sweep itself or explicitly repaired through the invalidation API
    /// ([`SparseState::repatch_adapted`] at λ-adaptation boundaries,
    /// [`SparseState::resync_counts`] after a sharded snapshot reload) —
    /// debug-asserted bit-equal to a from-scratch rebuild here.
    pub(crate) fn new(ctx: &SweepContext<'a>, reuse: Option<SparseState>) -> Self {
        let tables = SweepTables::new(ctx.priors);
        let state = match reuse {
            Some(prev) if prev.matches(&tables, ctx.counts) => {
                #[cfg(debug_assertions)]
                {
                    let fresh = SparseState::build(&tables, ctx.counts);
                    debug_assert_eq!(
                        prev.nz, fresh.nz,
                        "cached non-zero lists drifted from the counts"
                    );
                    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    debug_assert_eq!(
                        bits(&prev.base0),
                        bits(&fresh.base0),
                        "cached baselines drifted from a fresh rebuild"
                    );
                    debug_assert_eq!(
                        bits(&prev.recip.recip),
                        bits(&fresh.recip.recip),
                        "cached reciprocals drifted from a fresh rebuild"
                    );
                    debug_assert_eq!(
                        bits(&prev.recip.qr),
                        bits(&fresh.recip.qr),
                        "cached quadrature products drifted from a fresh rebuild"
                    );
                    debug_assert_eq!(
                        bits(&prev.recip.int_s1),
                        bits(&fresh.recip.int_s1),
                        "cached S1 sums drifted from a fresh rebuild"
                    );
                    debug_assert_eq!(
                        bits(&prev.recip.int_s2_zero),
                        bits(&fresh.recip.int_s2_zero),
                        "cached zero-row S2 sums drifted from a fresh rebuild"
                    );
                }
                prev
            }
            _ => SparseState::build(&tables, ctx.counts),
        };
        let t_count = tables.num_topics();
        Self {
            tables,
            state,
            s: 0.0,
            r: 0.0,
            fact: vec![ctx.alpha; t_count],
            nd_doc: vec![0; t_count],
            active: Vec::new(),
            in_active: vec![false; t_count],
            term_topic: Vec::new(),
            term_cum: Vec::new(),
            alpha: ctx.alpha,
            tally_q: Cell::new(0),
            tally_r: Cell::new(0),
            tally_s: Cell::new(0),
            tally_fallback: Cell::new(0),
        }
    }

    /// Surrender the reusable state for the next sweep chunk.
    pub(crate) fn into_state(self) -> SparseState {
        self.state
    }

    /// Snapshot and reset the bucket-routing tallies accumulated since the
    /// last call (one sweep's worth under [`run_sweeps`](super::run_sweeps)).
    pub(crate) fn take_bucket_counts(&mut self) -> srclda_obs::SparseBucketCounts {
        srclda_obs::SparseBucketCounts {
            q_hits: self.tally_q.take(),
            r_hits: self.tally_r.take(),
            s_hits: self.tally_s.take(),
            dense_fallbacks: self.tally_fallback.take(),
        }
    }

    /// `dev_w(t)` for a topic on word `w`'s deviation list. Non-negative
    /// by baseline construction; the integrated case clamps the last-ulp
    /// cancellation residue.
    #[inline]
    fn dev_at(&self, t: usize, w: usize) -> f64 {
        match self.tables.kinds[t] {
            Kind::Symmetric => 0.0,
            Kind::Fixed(_) => {
                (self.tables.rows[t][w] - self.state.base_param[t]) * self.state.recip.recip[t]
            }
            Kind::Integrated(i) => {
                let f = &self.tables.ints[i as usize];
                let qr = &self.state.recip.qr[f.qr_base..f.qr_base + f.levels];
                // `base0[t]` holds S2 at the floor row for the current
                // quadrature; each term of the dot dominates its floor
                // counterpart, so the difference is non-negative up to
                // last-ulp cancellation (clamped).
                (dot_mod4(f.table.delta_row(w), qr) - self.state.base0[t]).max(0.0)
            }
            Kind::Frozen(_) => self.tables.rows[t][w] - self.state.base_param[t],
            Kind::ConceptSet(_) => self.tables.add[t] * self.state.recip.recip[t],
        }
    }

    /// Rebuild the smoothing-bucket mass from scratch.
    fn rebuild_s(&mut self) {
        self.s = self.state.base0.iter().map(|&b| self.alpha * b).sum();
    }

    /// Remove topic `t`'s contribution from the cached bucket masses (call
    /// before its counts/cache change), using the same values that were
    /// added.
    #[inline]
    fn unplug(&mut self, t: usize) {
        self.s -= self.alpha * self.state.base0[t];
        self.r -= self.nd_doc[t] as f64 * self.state.base0[t];
    }

    /// Re-add topic `t`'s contribution after its counts/cache changed.
    #[inline]
    fn replug(&mut self, t: usize) {
        self.s += self.alpha * self.state.base0[t];
        self.r += self.nd_doc[t] as f64 * self.state.base0[t];
    }

    /// Assemble the q bucket for word `w`: deviation terms, dense-topic
    /// terms, then non-zero count terms, each as (topic, inclusive
    /// cumulative mass) in `term_topic`/`term_cum`. Returns the bucket
    /// total.
    #[inline]
    fn word_bucket(&mut self, counts: &CountMatrices, w: usize) -> f64 {
        self.term_topic.clear();
        self.term_cum.clear();
        let mut q = 0.0;
        for &t32 in &self.state.exc[w] {
            let t = t32 as usize;
            let nw = counts.nw(w, t) as f64;
            let mass = (self.dev_at(t, w)
                + if nw > 0.0 {
                    // Fold the nw term in here so the nz walk below can
                    // skip deviating topics entirely (no double count).
                    nw * self.coef_at(t, w)
                } else {
                    0.0
                })
                * self.fact[t];
            if mass > 0.0 {
                q += mass;
                self.term_topic.push(t32);
                self.term_cum.push(q);
            }
        }
        for &t32 in &self.state.dense_topics {
            let t = t32 as usize;
            let Kind::Integrated(i) = self.tables.kinds[t] else {
                continue;
            };
            let f = &self.tables.ints[i as usize];
            let qr = &self.state.recip.qr[f.qr_base..f.qr_base + f.levels];
            let nw = counts.nw(w, t) as f64;
            let mass = (nw * self.state.recip.int_s1[i as usize]
                + dot_mod4(f.table.delta_row(w), qr))
                * self.fact[t];
            if mass > 0.0 {
                q += mass;
                self.term_topic.push(t32);
                self.term_cum.push(q);
            }
        }
        // Safe to index `exc[w]` by sorted merge instead of a contains()
        // scan: both lists are sorted ascending.
        let exc = &self.state.exc[w];
        let mut e = 0usize;
        for &t32 in &self.state.nz[w] {
            while e < exc.len() && exc[e] < t32 {
                e += 1;
            }
            if e < exc.len() && exc[e] == t32 {
                continue; // already counted in the deviation walk
            }
            let t = t32 as usize;
            if self.state.dense_flag[t] {
                continue; // full weight already in the dense walk
            }
            let coef = self.coef_at(t, w);
            if coef <= 0.0 {
                continue;
            }
            let mass = counts.nw(w, t) as f64 * coef * self.fact[t];
            if mass > 0.0 {
                q += mass;
                self.term_topic.push(t32);
                self.term_cum.push(q);
            }
        }
        q
    }

    /// The `nw` coefficient of topic `t` on word `w` (see the kind table).
    #[inline]
    fn coef_at(&self, t: usize, w: usize) -> f64 {
        match self.tables.kinds[t] {
            Kind::Symmetric | Kind::Fixed(_) => self.state.recip.recip[t],
            Kind::Integrated(i) => self.state.recip.int_s1[i as usize],
            Kind::Frozen(_) => 0.0,
            Kind::ConceptSet(_) => {
                if self.tables.masks[t][w] {
                    self.state.recip.recip[t]
                } else {
                    0.0
                }
            }
        }
    }

    /// One full sweep. Draws exactly one uniform per token (or one
    /// `gen_range` on the zero-mass fallback) — the same *count* as the
    /// dense kernels, though the values route through bucket thresholds,
    /// so the chain is distribution-equivalent rather than bit-equal.
    pub(crate) fn sweep(&mut self, ctx: &SweepContext<'_>, z: &mut [Vec<u32>], rng: &mut SldaRng) {
        let t_count = self.tables.num_topics();
        let counts = ctx.counts;
        let nt = counts.nt_all();
        self.rebuild_s();
        for (d, doc_tokens) in ctx.tokens.iter().enumerate() {
            self.enter_doc(&z[d]);
            for (j, &word) in doc_tokens.iter().enumerate() {
                let w = word as usize;
                let old = z[d][j] as usize;
                self.unplug(old);
                counts.decrement_serial(w, d, old);
                self.nd_doc[old] -= 1;
                self.fact[old] = self.nd_doc[old] as f64 + self.alpha;
                if counts.nw(w, old) == 0 {
                    self.state.nz_remove(w, old);
                }
                self.state
                    .refresh_topic(&self.tables, old, nt[old].load(Ordering::Relaxed));
                self.replug(old);

                let q = self.word_bucket(counts, w);
                // Patched scalars can drift a few ulps negative; clamp at
                // the draw, never in the cache (the patches must stay
                // symmetric with what was added).
                let r = self.r.max(0.0);
                let s = self.s.max(0.0);
                let total = q + r + s;
                let new = if total > 0.0 && total.is_finite() {
                    let u = rng.gen::<f64>() * total;
                    self.select(u, q, r)
                } else {
                    // All-zero mass (e.g. CTM with the word outside every
                    // concept bag and no assignments anywhere): uniform,
                    // like the dense kernels.
                    self.tally_fallback.set(self.tally_fallback.get() + 1);
                    rng.gen_range(0..t_count)
                };
                z[d][j] = idx_u32(new);

                self.unplug(new);
                counts.increment_serial(w, d, new);
                if counts.nw(w, new) == 1 {
                    self.state.nz_insert(w, new);
                }
                if !self.in_active[new] {
                    self.in_active[new] = true;
                    self.active.push(idx_u32(new));
                }
                self.nd_doc[new] += 1;
                self.fact[new] = self.nd_doc[new] as f64 + self.alpha;
                self.state
                    .refresh_topic(&self.tables, new, nt[new].load(Ordering::Relaxed));
                self.replug(new);
            }
            self.leave_doc();
        }
    }

    /// Route the scaled uniform `u ∈ [0, q+r+s)` to its bucket and invert
    /// that bucket's cumulative. Bucket order q, r, s — largest mass first
    /// in the common regime.
    #[inline]
    fn select(&self, u: f64, q: f64, r: f64) -> usize {
        if u < q {
            let idx = binary_search_cumulative(&self.term_cum, u);
            self.tally_q.set(self.tally_q.get() + 1);
            return self.term_topic[idx] as usize;
        }
        let mut fallback = None;
        let routed_to_doc = u < q + r;
        if routed_to_doc {
            // Doc bucket: walk the document's unique topics.
            let target = u - q;
            let mut acc = 0.0;
            for &t in &self.active {
                let t = t as usize;
                let mass = self.nd_doc[t] as f64 * self.state.base0[t];
                if mass > 0.0 {
                    acc += mass;
                    fallback = Some(t);
                    if acc > target {
                        self.tally_r.set(self.tally_r.get() + 1);
                        return t;
                    }
                }
            }
            // Drift overrun: the patched r exceeded the exact walk total
            // by a few ulps. Fall through to the smoothing walk.
        }
        // Smoothing bucket: walk all topics over α·base0.
        let target = (u - q - r).max(0.0);
        let mut acc = 0.0;
        for (t, &b) in self.state.base0.iter().enumerate() {
            let mass = self.alpha * b;
            if mass > 0.0 {
                acc += mass;
                fallback = Some(t);
                if acc > target {
                    // A draw that *entered* the doc bucket and overran into
                    // this walk resolved off its routed bucket — count it as
                    // a fallback, not a smoothing hit.
                    if routed_to_doc {
                        self.tally_fallback.set(self.tally_fallback.get() + 1);
                    } else {
                        self.tally_s.set(self.tally_s.get() + 1);
                    }
                    return t;
                }
            }
        }
        // Total drift overrun: return the last positive-mass topic seen.
        // Reachable only when the cached s/r exceed their exact sums by
        // ulps; a branch must still produce a valid topic.
        self.tally_fallback.set(self.tally_fallback.get() + 1);
        fallback.unwrap_or(0)
    }

    /// Initialize doc state and the doc-bucket mass from the document's
    /// assignments (O(n_d)); `r` is rebuilt exactly here, killing any
    /// drift accumulated in the previous document.
    fn enter_doc(&mut self, z_doc: &[u32]) {
        for &t32 in z_doc {
            let t = t32 as usize;
            if !self.in_active[t] {
                self.in_active[t] = true;
                self.active.push(t32);
            }
            self.nd_doc[t] += 1;
        }
        self.r = 0.0;
        for i in 0..self.active.len() {
            let t = self.active[i] as usize;
            self.fact[t] = self.nd_doc[t] as f64 + self.alpha;
            self.r += self.nd_doc[t] as f64 * self.state.base0[t];
        }
    }

    /// Reset the entries touched by the current document.
    fn leave_doc(&mut self) {
        for i in 0..self.active.len() {
            let t = self.active[i] as usize;
            self.nd_doc[t] = 0;
            self.fact[t] = self.alpha;
            self.in_active[t] = false;
        }
        self.active.clear();
        self.r = 0.0;
    }

    /// Total bucket mass for word `w` at the current state, computed the
    /// exact way the sweep computes it (cached s and r, fresh q). Test
    /// support for the bucket-mass ≡ dense-mass property.
    #[cfg(test)]
    fn total_mass(&mut self, counts: &CountMatrices, w: usize) -> f64 {
        let q = self.word_bucket(counts, w);
        q + self.r.max(0.0) + self.s.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel::Kernel;
    use super::*;
    use crate::prior::TopicPrior;
    use proptest::prelude::*;
    use srclda_knowledge::{SmoothingFunction, SourceTopic};
    use srclda_math::{rng_from_seed, DiscretizedGaussian};

    /// One prior of every kind over a shared vocabulary (mirrors the serial
    /// kernel's fixture).
    fn mixed_priors(v: usize, counts: &[f64], bag: &[u32], levels: usize) -> Vec<TopicPrior> {
        let topic = SourceTopic::new("T", counts.to_vec());
        let quad = DiscretizedGaussian::unit_interval(0.6, 0.25, levels).unwrap();
        let g = SmoothingFunction::identity();
        vec![
            TopicPrior::symmetric(0.37, v).unwrap(),
            TopicPrior::fixed_from_source(&topic, 0.01),
            TopicPrior::integrated(&topic, 0.01, &g, &quad),
            TopicPrior::frozen_from_source(&topic, 0.01),
            TopicPrior::concept_set(bag, 0.5, v).unwrap(),
        ]
    }

    /// Random assignments into the count matrices; returns z.
    fn random_state(
        tokens: &[Vec<u32>],
        counts: &CountMatrices,
        rng: &mut SldaRng,
    ) -> Vec<Vec<u32>> {
        tokens
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..counts.num_topics());
                        counts.increment(w as usize, d, t);
                        t as u32
                    })
                    .collect()
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The bucket decomposition's total mass (cached s + cached r +
        /// fresh q) equals the dense per-topic weight sum for every word,
        /// across all five prior kinds and random count states — the
        /// correctness core of the sub-linear sampler.
        #[test]
        fn bucket_mass_matches_dense_mass(
            raw_counts in prop::collection::vec(0u32..200, 5..16),
            bag in prop::collection::vec(0u32..8, 0..8),
            levels in 2usize..6,
            doc_words in prop::collection::vec(0u32..16, 4..40),
            alpha in 0.05f64..2.0,
            seed in 0u64..1000,
        ) {
            let counts_vec: Vec<f64> = raw_counts.iter().map(|&c| c as f64).collect();
            let v = counts_vec.len();
            let bag: Vec<u32> = bag.into_iter().filter(|&b| (b as usize) < v).collect();
            let doc: Vec<u32> = doc_words.into_iter().map(|w| w % v as u32).collect();
            let priors = mixed_priors(v, &counts_vec, &bag, levels);
            let tokens = vec![doc];
            let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
            let matrices = CountMatrices::new(v, priors.len(), &doc_lens);
            let mut rng = rng_from_seed(seed);
            let z = random_state(&tokens, &matrices, &mut rng);
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &matrices,
                priors: &priors,
                alpha,
            };
            let mut kernel = SparseKernel::new(&ctx, None);
            kernel.rebuild_s();
            kernel.enter_doc(&z[0]);
            for w in 0..v {
                let sparse_mass = kernel.total_mass(&matrices, w);
                let mut dense_mass = 0.0;
                for (t, prior) in priors.iter().enumerate() {
                    dense_mass += prior.word_weight(
                        w,
                        matrices.nw(w, t) as f64,
                        matrices.nt(t) as f64,
                    ) * (matrices.nd(0, t) as f64 + alpha);
                }
                let tol = 1e-9 * dense_mass.abs().max(1e-12);
                prop_assert!(
                    (sparse_mass - dense_mass).abs() <= tol,
                    "word {}: sparse {} vs dense {}", w, sparse_mass, dense_mass
                );
            }
        }

        /// Per-kind bucket mass: each prior kind in isolation must also
        /// match, pinning the per-kind baseline/deviation/coefficient
        /// algebra (a mixed fixture can mask a per-kind sign error).
        #[test]
        fn bucket_mass_matches_per_kind(
            raw_counts in prop::collection::vec(1u32..150, 5..12),
            kind_pick in 0usize..5,
            levels in 2usize..5,
            doc_words in prop::collection::vec(0u32..12, 3..24),
            alpha in 0.1f64..1.5,
            seed in 0u64..500,
        ) {
            let counts_vec: Vec<f64> = raw_counts.iter().map(|&c| c as f64).collect();
            let v = counts_vec.len();
            let topic = SourceTopic::new("T", counts_vec.clone());
            let quad = DiscretizedGaussian::unit_interval(0.6, 0.25, levels).unwrap();
            let g = SmoothingFunction::identity();
            let bag: Vec<u32> = (0..v as u32 / 2).collect();
            let make = |k: usize| -> TopicPrior {
                match k {
                    0 => TopicPrior::symmetric(0.21, v).unwrap(),
                    1 => TopicPrior::fixed_from_source(&topic, 0.01),
                    2 => TopicPrior::integrated(&topic, 0.01, &g, &quad),
                    3 => TopicPrior::frozen_from_source(&topic, 0.01),
                    _ => TopicPrior::concept_set(&bag, 0.5, v).unwrap(),
                }
            };
            let priors: Vec<TopicPrior> = (0..3).map(|_| make(kind_pick)).collect();
            let doc: Vec<u32> = doc_words.into_iter().map(|w| w % v as u32).collect();
            let tokens = vec![doc];
            let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
            let matrices = CountMatrices::new(v, priors.len(), &doc_lens);
            let mut rng = rng_from_seed(seed);
            let z = random_state(&tokens, &matrices, &mut rng);
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &matrices,
                priors: &priors,
                alpha,
            };
            let mut kernel = SparseKernel::new(&ctx, None);
            kernel.rebuild_s();
            kernel.enter_doc(&z[0]);
            for w in 0..v {
                let sparse_mass = kernel.total_mass(&matrices, w);
                let mut dense_mass = 0.0;
                for (t, prior) in priors.iter().enumerate() {
                    dense_mass += prior.word_weight(
                        w,
                        matrices.nw(w, t) as f64,
                        matrices.nt(t) as f64,
                    ) * (matrices.nd(0, t) as f64 + alpha);
                }
                let tol = 1e-9 * dense_mass.abs().max(1e-12);
                prop_assert!(
                    (sparse_mass - dense_mass).abs() <= tol,
                    "kind {} word {}: sparse {} vs dense {}",
                    kind_pick, w, sparse_mass, dense_mass
                );
            }
        }

        /// Sweeping preserves the count invariants and keeps the non-zero
        /// lists exactly in sync with the count matrices.
        #[test]
        fn sweeps_keep_nz_lists_in_sync(
            raw_counts in prop::collection::vec(0u32..80, 5..10),
            doc_lens_pick in prop::collection::vec(3usize..12, 2..5),
            seed in 0u64..300,
        ) {
            let counts_vec: Vec<f64> = raw_counts.iter().map(|&c| c as f64).collect();
            let v = counts_vec.len();
            let priors = mixed_priors(v, &counts_vec, &[0, 1], 3);
            let mut rng = rng_from_seed(seed);
            let tokens: Vec<Vec<u32>> = doc_lens_pick
                .iter()
                .map(|&n| (0..n).map(|_| rng.gen_range(0..v) as u32).collect())
                .collect();
            let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
            let matrices = CountMatrices::new(v, priors.len(), &doc_lens);
            let mut z = random_state(&tokens, &matrices, &mut rng);
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &matrices,
                priors: &priors,
                alpha: 0.4,
            };
            let mut kernel = SparseKernel::new(&ctx, None);
            for _ in 0..6 {
                kernel.sweep(&ctx, &mut z, &mut rng);
                prop_assert!(matrices.check_invariants());
            }
            let state = kernel.into_state();
            for w in 0..v {
                let expect: Vec<u32> = (0..priors.len() as u32)
                    .filter(|&t| matrices.nw(w, t as usize) > 0)
                    .collect();
                prop_assert_eq!(&state.nz[w], &expect);
            }
        }
    }

    /// Mixed-prior fixture shared with the determinism tests.
    fn fixture() -> (Vec<Vec<u32>>, Vec<TopicPrior>) {
        let tokens = vec![
            vec![0, 1, 2, 0, 3, 4],
            vec![4, 5, 4, 1],
            vec![2, 2, 3, 5, 0, 1, 5],
        ];
        let t0 = SourceTopic::new("A", vec![5.0, 3.0, 0.0, 0.0, 1.0, 0.0]);
        let t1 = SourceTopic::new("B", vec![0.0, 0.0, 4.0, 4.0, 0.0, 2.0]);
        let quad = DiscretizedGaussian::unit_interval(0.7, 0.3, 4).unwrap();
        let g = SmoothingFunction::identity();
        let priors = vec![
            TopicPrior::symmetric(0.1, 6).unwrap(),
            TopicPrior::fixed_from_source(&t0, 0.01),
            TopicPrior::integrated(&t1, 0.01, &g, &quad),
            TopicPrior::frozen_from_source(&t0, 0.01),
            TopicPrior::concept_set(&[0, 1, 2, 3], 0.5, 6).unwrap(),
        ];
        (tokens, priors)
    }

    /// Same seed → same chain, including across a state hand-off between
    /// chunks (reuse is bit-transparent).
    #[test]
    fn sparse_chain_is_deterministic_and_reuse_transparent() {
        let run = |split: bool| -> Vec<Vec<u32>> {
            let (tokens, priors) = fixture();
            let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
            let counts = CountMatrices::new(6, priors.len(), &doc_lens);
            let mut rng = rng_from_seed(77);
            let mut z = random_state(&tokens, &counts, &mut rng);
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &counts,
                priors: &priors,
                alpha: 0.4,
            };
            if split {
                // 30 sweeps as 3 chunks of 10, handing the state across.
                let mut state = None;
                for _ in 0..3 {
                    let mut k = SparseKernel::new(&ctx, state.take());
                    for _ in 0..10 {
                        k.sweep(&ctx, &mut z, &mut rng);
                    }
                    state = Some(k.into_state());
                }
            } else {
                let mut k = SparseKernel::new(&ctx, None);
                for _ in 0..30 {
                    k.sweep(&ctx, &mut z, &mut rng);
                    assert!(counts.check_invariants());
                }
            }
            z
        };
        let one_chunk = run(false);
        assert_eq!(one_chunk, run(false), "same seed must replay the chain");
        assert_eq!(
            one_chunk,
            run(true),
            "chunk boundaries must not perturb the chain"
        );
    }

    /// Regression: the bucket structure must survive a checkpoint
    /// round-trip of the priors. `TopicPrior::to_raw` does not serialize
    /// the dense integration layout's `zero_row`/`off_support` hints, so a
    /// structure derived from them would differ after resume and route
    /// draws onto a different chain (caught by
    /// `tests/shard_equivalence.rs::resume_replays_bit_identically`).
    #[test]
    fn bucket_structure_survives_prior_round_trip() {
        let (tokens, priors) = fixture();
        let v = 6;
        let round_tripped: Vec<TopicPrior> = priors
            .iter()
            .map(|p| TopicPrior::from_raw(p.to_raw(), v).unwrap())
            .collect();
        let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
        let counts = CountMatrices::new(v, priors.len(), &doc_lens);
        let tables_a = SweepTables::new(&priors);
        let tables_b = SweepTables::new(&round_tripped);
        let a = SparseState::build(&tables_a, &counts);
        let b = SparseState::build(&tables_b, &counts);
        assert_eq!(a.exc, b.exc, "deviation lists changed across round-trip");
        assert_eq!(a.dense_topics, b.dense_topics);
        assert_eq!(a.base_param, b.base_param);
        assert_eq!(a.int_floor, b.int_floor);
        assert_eq!(a.tags, b.tags);
    }

    /// The zero-mass fallback (all-concept priors covering no word) keeps
    /// the chain alive, mirroring the dense kernels.
    #[test]
    fn zero_mass_fallback_keeps_chain_alive() {
        let tokens = vec![vec![0, 1, 0]];
        let priors = vec![
            TopicPrior::concept_set(&[], 0.5, 2).unwrap(),
            TopicPrior::concept_set(&[], 0.5, 2).unwrap(),
        ];
        let counts = CountMatrices::new(2, 2, &[3]);
        let mut rng = rng_from_seed(5);
        let mut z = random_state(&tokens, &counts, &mut rng);
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        let mut k = SparseKernel::new(&ctx, None);
        for _ in 0..6 {
            k.sweep(&ctx, &mut z, &mut rng);
            assert!(counts.check_invariants());
        }
    }

    /// Long-run topic concentration sanity: under strongly separated fixed
    /// priors the sparse sampler finds the same separation the serial
    /// kernel does (a cheap distribution-level smoke check; the real
    /// perplexity-parity acceptance lives in `tests/kernel_equivalence.rs`).
    #[test]
    fn sparse_sampler_separates_topics_like_the_dense_kernel() {
        let tokens = vec![vec![0, 0, 3], vec![1, 1, 2]];
        let school = SourceTopic::new("School", vec![10.0, 10.0, 0.0, 0.0]);
        let sports = SourceTopic::new("Sports", vec![0.0, 0.0, 10.0, 10.0]);
        let priors = vec![
            TopicPrior::fixed_from_source(&school, 0.01),
            TopicPrior::fixed_from_source(&sports, 0.01),
        ];
        let counts = CountMatrices::new(4, 2, &[3, 3]);
        let mut rng = rng_from_seed(7);
        let mut z = random_state(&tokens, &counts, &mut rng);
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.1,
        };
        let mut k = SparseKernel::new(&ctx, None);
        for _ in 0..100 {
            k.sweep(&ctx, &mut z, &mut rng);
        }
        assert_eq!(z[0][0], 0, "pencil should map to School");
        assert_eq!(z[0][1], 0);
        assert_eq!(z[1][0], 0, "ruler should map to School");
        assert_eq!(z[0][2], 1, "umpire should map to Sports");
        assert_eq!(z[1][2], 1, "baseball should map to Sports");
    }

    /// A comparable chain statistic over many sweeps: the sparse and dense
    /// kernels must land in overlapping long-run occupancy (they walk
    /// different chains over the same stationary distribution).
    #[test]
    fn long_run_topic_occupancy_tracks_the_serial_kernel() {
        let occupancy = |sparse: bool| -> Vec<f64> {
            let (tokens, priors) = fixture();
            let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
            let counts = CountMatrices::new(6, priors.len(), &doc_lens);
            let mut rng = rng_from_seed(11);
            let mut z = random_state(&tokens, &counts, &mut rng);
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &counts,
                priors: &priors,
                alpha: 0.4,
            };
            let mut totals = vec![0.0; priors.len()];
            let sweeps = 400;
            if sparse {
                let mut k = SparseKernel::new(&ctx, None);
                for _ in 0..sweeps {
                    k.sweep(&ctx, &mut z, &mut rng);
                    for (t, total) in totals.iter_mut().enumerate() {
                        *total += counts.nt(t) as f64;
                    }
                }
            } else {
                let mut k = Kernel::new(&ctx, None);
                for _ in 0..sweeps {
                    k.sweep(&ctx, &mut z, &mut rng);
                    for (t, total) in totals.iter_mut().enumerate() {
                        *total += counts.nt(t) as f64;
                    }
                }
            }
            let n: f64 = totals.iter().sum();
            totals.iter().map(|&x| x / n).collect()
        };
        let sparse = occupancy(true);
        let dense = occupancy(false);
        for (t, (a, b)) in sparse.iter().zip(&dense).enumerate() {
            assert!(
                (a - b).abs() < 0.1,
                "topic {t} occupancy diverged: sparse {a:.3} vs dense {b:.3}"
            );
        }
    }
}
