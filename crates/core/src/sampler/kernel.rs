//! The optimized serial Gibbs hot path: flat prior tables, cached
//! denominator reciprocals, direct λ-row loads, sparse document-topic
//! bookkeeping, and non-atomic count updates.
//!
//! The dense reference sweep ([`super::serial::sweep`], kept as
//! [`crate::sampler::Backend::SerialDense`]) evaluates
//! `TopicPrior::word_weight(w, n_wt, n_t) · (n_dt + α)` per (token, topic):
//! an enum match into heap-scattered prior payloads, a fresh reciprocal per
//! topic (one per quadrature level for λ-integrated topics), and two atomic
//! count loads. This module precomputes everything that is constant across
//! a sweep into struct-of-arrays form and maintains the count-dependent
//! factors incrementally, while producing **bit-identical** weights — the
//! kernel walks the exact same chain from the same seed.
//!
//! ## The flat sweep tables
//!
//! [`SweepTables`] flattens `&[TopicPrior]` into parallel per-topic arrays:
//! a one-byte kind tag, the numerator addend (β), the denominator addend
//! (`Vβ` / `Σδ` / `|W_c|β`), a per-word row slice (δ for `Fixed`, φ for
//! `Frozen`), a concept mask, and a view of each λ-integration table. The
//! per-(token, topic) enum dispatch becomes a tag branch over flat arrays,
//! and λ-integrated topics read their δ row through the table's per-word
//! row pointer (a direct load; the sparse layout's binary search is gone).
//!
//! ## The reciprocal-cache invariant
//!
//! [`RecipCache`] holds, for every topic `t`, exactly
//! `recip[t] = 1.0 / (n_t + denom_add[t])` evaluated at the **current**
//! topic total `n_t` — and for every λ-integrated topic the per-level
//! products `qr[a] = w_a · (1.0 / (n_t + Σδ_a))`. Because a token move
//! changes `n_t` for at most two topics (the decremented old topic and the
//! incremented new one), the cache is refreshed by recomputing just those
//! two entries from the live counts:
//!
//! * after the decrement, **before** the weight pass (`old`'s `n_t` changed);
//! * after the increment, at the end of the token (`new`'s `n_t` changed).
//!
//! Every refresh recomputes `1.0 / (n_t + c)` from scratch — never by
//! incremental algebra — so a cached reciprocal is always bit-equal to the
//! one `TopicPrior::word_weight` would derive, and the inner loop's
//! divisions become multiplies without perturbing the chain.
//!
//! ## Sparse document-topic iteration
//!
//! The document factor `(n_dt + α)` is kept in a dense per-topic `fact`
//! array that holds exactly `α` for every topic absent from the current
//! document (bit-equal to `0.0 + α`) and `n_dt as f64 + α` for the few
//! present ones. Entering a document initializes only its own topics (an
//! `O(n_d)` walk of its assignments — the α-only tail is one bulk reset,
//! not `T` per-topic recomputations); each token move patches the two
//! affected entries; leaving resets the touched entries. The weight pass
//! therefore multiplies by a plain `f64` load instead of an atomic `n_dt`
//! load plus convert-and-add per topic.
//!
//! ## Non-atomic fast path
//!
//! The serial kernel owns the counts exclusively, so it uses
//! [`CountMatrices::increment_serial`]/[`decrement_serial`]
//! (relaxed load + store, plain `mov`s) instead of the `lock`-prefixed
//! read-modify-writes the parallel barrier path requires.
//!
//! [`decrement_serial`]: CountMatrices::decrement_serial

use super::{idx_u32, SweepContext};
use crate::counts::CountMatrices;
use crate::prior::{dot_mod4, IntegrationTable, TopicPrior};
use rand::Rng;
use srclda_math::categorical::binary_search_cumulative;
use srclda_math::SldaRng;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Per-topic prior kind tag (the flat replacement for the `TopicPrior`
/// enum dispatch). Each carries the topic's ordinal within its channel:
/// `Fixed`/`Frozen` index the per-word f64 channel, `ConceptSet` the mask
/// channel, `Integrated` the [`SweepTables::ints`] views (and the λ-row
/// channel of the combined table).
#[derive(Debug, Clone, Copy)]
pub(super) enum Kind {
    Symmetric,
    Fixed(u32),
    Integrated(u32),
    Frozen(u32),
    ConceptSet(u32),
}

/// Byte budget for the word-major combined table (see [`Combined`]). The
/// combined table duplicates every per-word prior value, so a `B = 10000`
/// scaling run would double a multi-hundred-MB footprint; past this budget
/// the kernel falls back to reading each prior's own storage (still
/// bit-identical, just without the contiguous-read win).
const MAX_COMBINED_BYTES: usize = 512 << 20;

/// Flat view of one λ-integration table plus the offset of its cached
/// `qr` row inside [`RecipCache::qr`].
pub(super) struct IntFlat<'a> {
    pub(super) table: &'a IntegrationTable,
    pub(super) qr_base: usize,
    pub(super) levels: usize,
}

/// Struct-of-arrays sweep tables: everything about the priors that is
/// constant across a sweep, flattened for the per-(token, topic) loop.
/// Built once per [`run_sweeps`](super::run_sweeps) call (priors only
/// change *between* calls, via λ adaptation).
pub(crate) struct SweepTables<'a> {
    pub(super) kinds: Vec<Kind>,
    /// Numerator addend: β for `Symmetric`/`ConceptSet`, 0 otherwise.
    pub(super) add: Vec<f64>,
    /// Denominator addend: `Vβ` / `Σδ` / `|W_c|β`; 0 for `Frozen` and
    /// λ-integrated topics (whose denominators live per level).
    pub(super) denom_add: Vec<f64>,
    /// Word-indexed row: δ for `Fixed`, φ for `Frozen`, empty otherwise.
    pub(super) rows: Vec<&'a [f64]>,
    /// Concept membership masks (`ConceptSet` only, empty otherwise).
    pub(super) masks: Vec<&'a [bool]>,
    /// Flat λ-integration views, one per integrated topic.
    pub(super) ints: Vec<IntFlat<'a>>,
}

impl<'a> SweepTables<'a> {
    /// Flatten the priors.
    pub(crate) fn new(priors: &'a [TopicPrior]) -> Self {
        let t_count = priors.len();
        let mut tables = Self {
            kinds: Vec::with_capacity(t_count),
            add: vec![0.0; t_count],
            denom_add: vec![0.0; t_count],
            rows: vec![&[][..]; t_count],
            masks: vec![&[][..]; t_count],
            ints: Vec::new(),
        };
        let mut qr_base = 0usize;
        let mut n_f64 = 0u32;
        let mut n_mask = 0u32;
        for (t, prior) in priors.iter().enumerate() {
            let kind = match prior {
                TopicPrior::Symmetric { beta, denom_add } => {
                    tables.add[t] = *beta;
                    tables.denom_add[t] = *denom_add;
                    Kind::Symmetric
                }
                TopicPrior::Fixed { delta, sum } => {
                    tables.rows[t] = delta;
                    tables.denom_add[t] = *sum;
                    n_f64 += 1;
                    Kind::Fixed(n_f64 - 1)
                }
                TopicPrior::Integrated(table) => {
                    let idx = idx_u32(tables.ints.len());
                    tables.ints.push(IntFlat {
                        table,
                        qr_base,
                        levels: table.levels(),
                    });
                    qr_base += table.levels();
                    Kind::Integrated(idx)
                }
                TopicPrior::Frozen { phi } => {
                    tables.rows[t] = phi;
                    n_f64 += 1;
                    Kind::Frozen(n_f64 - 1)
                }
                TopicPrior::ConceptSet {
                    in_set,
                    beta,
                    denom_add,
                } => {
                    tables.add[t] = *beta;
                    tables.masks[t] = in_set;
                    tables.denom_add[t] = *denom_add;
                    n_mask += 1;
                    Kind::ConceptSet(n_mask - 1)
                }
            };
            tables.kinds.push(kind);
        }
        tables
    }

    /// Total topic count `T`.
    pub(crate) fn num_topics(&self) -> usize {
        self.kinds.len()
    }

    /// The prior weight of word `w` under topic `t` at counts `(nw, nt)`,
    /// computing reciprocals fresh — bit-identical to
    /// `TopicPrior::word_weight` (pinned by property test below) and to the
    /// serial kernel's cached evaluation. This is the flat-table entry
    /// point for the parallel backends, whose workers cannot share an
    /// incrementally-maintained cache.
    #[inline]
    pub(crate) fn weight_at(&self, t: usize, w: usize, nw: f64, nt: f64) -> f64 {
        match self.kinds[t] {
            Kind::Symmetric => (nw + self.add[t]) * (1.0 / (nt + self.denom_add[t])),
            Kind::Fixed(_) => (nw + self.rows[t][w]) * (1.0 / (nt + self.denom_add[t])),
            Kind::Integrated(i) => self.ints[i as usize].table.weight(w, nw, nt),
            Kind::Frozen(_) => self.rows[t][w],
            Kind::ConceptSet(_) => {
                if self.masks[t][w] {
                    (nw + self.add[t]) * (1.0 / (nt + self.denom_add[t]))
                } else {
                    0.0
                }
            }
        }
    }
}

/// The incrementally-maintained reciprocal cache (see the module docs for
/// the invariant). Shared with the sparse bucket kernel
/// ([`super::sparse`]), which derives its per-topic baseline masses from
/// the same cached values.
pub(super) struct RecipCache {
    /// `1.0 / (n_t + denom_add[t])` per topic (1.0 for kinds without a
    /// count-dependent denominator).
    pub(super) recip: Vec<f64>,
    /// Per λ-integrated topic × level: `w_a * (1.0 / (n_t + Σδ_a))`,
    /// concatenated in `SweepTables::ints` order.
    pub(super) qr: Vec<f64>,
    /// Per λ-integrated topic: `S1 = Σ_a w_a * (1.0 / (n_t + Σδ_a))` (the
    /// `nw` coefficient of the factored Eq. 3 evaluation).
    pub(super) int_s1: Vec<f64>,
    /// Per λ-integrated topic: `S2` evaluated against the topic's shared
    /// off-support δ row (`dot_mod4(zero_row, qr)`), so off-support words
    /// — the vast majority at realistic V — cost O(1) instead of O(A).
    /// 0.0 (unused) when the topic's support is unknown.
    pub(super) int_s2_zero: Vec<f64>,
}

impl RecipCache {
    pub(super) fn new(tables: &SweepTables<'_>, counts: &CountMatrices) -> Self {
        let qr_len = tables.ints.iter().map(|f| f.levels).sum();
        let mut cache = Self {
            recip: vec![1.0; tables.num_topics()],
            qr: vec![0.0; qr_len],
            int_s1: vec![0.0; tables.ints.len()],
            int_s2_zero: vec![0.0; tables.ints.len()],
        };
        for t in 0..tables.num_topics() {
            cache.refresh(tables, t, counts.nt(t));
        }
        cache
    }

    /// Recompute topic `t`'s cached reciprocals from its current total
    /// `nt`. Always a from-scratch `1.0 / (nt + c)` — never incremental
    /// algebra — so cached values stay bit-equal to fresh ones.
    #[inline]
    pub(super) fn refresh(&mut self, tables: &SweepTables<'_>, t: usize, nt: u32) {
        let ntf = nt as f64;
        match tables.kinds[t] {
            Kind::Symmetric | Kind::Fixed(_) | Kind::ConceptSet(_) => {
                self.recip[t] = 1.0 / (ntf + tables.denom_add[t]);
            }
            Kind::Integrated(i) => {
                let f = &tables.ints[i as usize];
                let qr = &mut self.qr[f.qr_base..f.qr_base + f.levels];
                let mut s1 = 0.0;
                for ((slot, &q), &sum) in qr.iter_mut().zip(f.table.weights()).zip(f.table.sums()) {
                    let v = q * (1.0 / (ntf + sum));
                    *slot = v;
                    s1 += v;
                }
                self.int_s1[i as usize] = s1;
                if let Some(zero) = f.table.zero_row() {
                    self.int_s2_zero[i as usize] = dot_mod4(zero, qr);
                }
            }
            Kind::Frozen(_) => {}
        }
    }
}

/// Word-major combined channels: every per-word prior value re-laid-out so
/// one token's weight pass reads **contiguous** memory instead of one row
/// from each topic's own allocation (T scattered cache lines per token —
/// the dominant cost of the dense sweep at realistic T).
///
/// * `f64s[w*n_f64 + j]` — δ_w of the `j`-th `Fixed` topic / φ_w of the
///   `j`-th `Frozen` topic (one shared channel, ordinals assigned in topic
///   order);
/// * `masks[w*n_mask + j]` — concept membership of the `j`-th `ConceptSet`
///   topic;
/// * `ints[(w*n_int + j)*a .. +a]` — the δ row of the `j`-th λ-integrated
///   topic (uniform level count `a`), adjacent to topic `j+1`'s row.
///
/// Built once per sweep-chunk from the priors (values copied verbatim, so
/// weights stay bit-identical); skipped — `None` in [`Kernel`] — when the
/// integrated level counts are not uniform or the copy would exceed
/// [`MAX_COMBINED_BYTES`].
pub(crate) struct Combined {
    f64s: Vec<f64>,
    n_f64: usize,
    masks: Vec<bool>,
    n_mask: usize,
    ints: Vec<f64>,
    n_int: usize,
    a: usize,
    /// `int_off[w*n_int + j]`: word `w` is off-support for the `j`-th
    /// λ-integrated topic, i.e. its δ row equals the topic's zero row and
    /// the cached `S2_zero` applies (all `false` when support is unknown).
    int_off: Vec<bool>,
}

impl Combined {
    /// Reuse `previous` (from an earlier sweep chunk of the *same* model)
    /// when its shape matches, else build fresh. Every channel copies
    /// values that λ adaptation never touches — δ rows, φ rows, masks,
    /// support membership (adapt re-weights the quadrature only) — so a
    /// prior chunk's table is verbatim-valid for the next chunk and the
    /// multi-MB copy need not be repaid per chunk. The table is shared by
    /// `Arc` so the sharded backend's S kernels read **one** copy instead
    /// of multiplying a potentially multi-hundred-MB structure by S.
    fn build_or_reuse(
        tables: &SweepTables<'_>,
        vocab_size: usize,
        previous: Option<Arc<Self>>,
    ) -> Option<Arc<Self>> {
        if let Some(prev) = previous {
            let shape_matches = tables.ints.len() == prev.n_int
                && tables.ints.iter().all(|f| f.levels == prev.a)
                && prev.ints.len() == vocab_size * prev.n_int * prev.a
                && prev.f64s.len() == vocab_size * prev.n_f64
                && prev.masks.len() == vocab_size * prev.n_mask;
            if shape_matches {
                return Some(prev);
            }
        }
        Self::build(tables, vocab_size).map(Arc::new)
    }

    pub(crate) fn build(tables: &SweepTables<'_>, vocab_size: usize) -> Option<Self> {
        let n_int = tables.ints.len();
        let a = tables.ints.first().map_or(0, |f| f.levels);
        if tables.ints.iter().any(|f| f.levels != a) {
            return None; // mixed quadrature depths: keep per-table reads
        }
        let n_f64 = tables
            .kinds
            .iter()
            .filter(|k| matches!(k, Kind::Fixed(_) | Kind::Frozen(_)))
            .count();
        let n_mask = tables
            .kinds
            .iter()
            .filter(|k| matches!(k, Kind::ConceptSet(_)))
            .count();
        // Checked arithmetic throughout: at extreme V·T·A the naive product
        // wraps around and a table far past the budget would be "estimated"
        // small — overflow means the real size is astronomically over
        // budget, so it takes the same fallback as a too-big table.
        let bytes = n_f64
            .checked_mul(8)
            .and_then(|b| b.checked_add(n_mask))
            .and_then(|b| {
                let int_bytes = a.checked_mul(8)?.checked_add(1)?.checked_mul(n_int)?;
                b.checked_add(int_bytes)
            })
            .and_then(|per_word| per_word.checked_mul(vocab_size));
        match bytes {
            Some(b) if b <= MAX_COMBINED_BYTES => {}
            _ => return None,
        }
        let mut combined = Self {
            f64s: vec![0.0; vocab_size * n_f64],
            n_f64,
            masks: vec![false; vocab_size * n_mask],
            n_mask,
            ints: vec![0.0; vocab_size * n_int * a],
            n_int,
            a,
            int_off: vec![false; vocab_size * n_int],
        };
        for (t, kind) in tables.kinds.iter().enumerate() {
            match *kind {
                Kind::Symmetric => {}
                Kind::Fixed(j) | Kind::Frozen(j) => {
                    let row = tables.rows[t];
                    for (w, &value) in row.iter().enumerate().take(vocab_size) {
                        combined.f64s[w * n_f64 + j as usize] = value;
                    }
                }
                Kind::ConceptSet(j) => {
                    let mask = tables.masks[t];
                    for (w, &in_set) in mask.iter().enumerate().take(vocab_size) {
                        combined.masks[w * n_mask + j as usize] = in_set;
                    }
                }
                Kind::Integrated(j) => {
                    let table = tables.ints[j as usize].table;
                    let has_zero = table.zero_row().is_some();
                    for w in 0..vocab_size {
                        let dst = (w * n_int + j as usize) * a;
                        combined.ints[dst..dst + a].copy_from_slice(table.delta_row(w));
                        combined.int_off[w * n_int + j as usize] =
                            has_zero && table.is_off_support(w);
                    }
                }
            }
        }
        Some(combined)
    }
}

/// Reusable kernel state for one chunk of sweeps: flat tables, the
/// reciprocal cache, the per-document factor array, and the prefix-sum
/// buffer. Build once per [`run_sweeps`](super::run_sweeps) call.
pub(crate) struct Kernel<'a> {
    tables: SweepTables<'a>,
    /// Word-major combined prior channels, shared across kernels of the
    /// same model (`None` on the fallback path — see [`Combined`]).
    combined: Option<Arc<Combined>>,
    recip: RecipCache,
    /// `n_dt as f64 + α` for the current document's topics; exactly `α`
    /// everywhere else.
    fact: Vec<f64>,
    /// The current document's `n_dt` mirror (kept in lock-step with the
    /// count matrices; avoids atomic loads in the weight pass).
    nd_doc: Vec<u32>,
    /// Topics of the current document (indices into `fact`/`nd_doc` to
    /// reset on document exit; may hold duplicates after mid-document
    /// zero crossings — the reset is idempotent).
    active: Vec<u32>,
    /// Inclusive prefix sums of the per-topic weights.
    buf: Vec<f64>,
    alpha: f64,
}

impl<'a> Kernel<'a> {
    /// Build the kernel for the given sweep context (reads the current
    /// counts to seed the reciprocal cache). `reuse` may carry the
    /// [`Combined`] table of a previous sweep chunk of the same model —
    /// λ adaptation between chunks never changes the copied values, so
    /// the table is taken as-is instead of re-copied (see
    /// [`Combined::build_or_reuse`]); recover it afterwards with
    /// [`Self::into_combined`].
    pub(crate) fn new(ctx: &SweepContext<'a>, reuse: Option<Arc<Combined>>) -> Self {
        let tables = SweepTables::new(ctx.priors);
        let combined = Combined::build_or_reuse(&tables, ctx.counts.vocab_size(), reuse);
        let recip = RecipCache::new(&tables, ctx.counts);
        let t_count = tables.num_topics();
        Self {
            tables,
            combined,
            recip,
            fact: vec![ctx.alpha; t_count],
            nd_doc: vec![0; t_count],
            active: Vec::new(),
            buf: vec![0.0; t_count],
            alpha: ctx.alpha,
        }
    }

    /// Surrender the combined table for reuse by the next sweep chunk.
    pub(crate) fn into_combined(self) -> Option<Arc<Combined>> {
        self.combined
    }

    /// One full sweep over every token of every document. Draws exactly one
    /// uniform per token from `rng` (or one `gen_range` on the zero-weight
    /// fallback), matching the dense reference sweep's RNG stream.
    pub(crate) fn sweep(&mut self, ctx: &SweepContext<'_>, z: &mut [Vec<u32>], rng: &mut SldaRng) {
        let t_count = self.tables.num_topics();
        let counts = ctx.counts;
        let nt = counts.nt_all();
        for (d, doc_tokens) in ctx.tokens.iter().enumerate() {
            self.enter_doc(&z[d]);
            for (j, &word) in doc_tokens.iter().enumerate() {
                let w = word as usize;
                let old = z[d][j] as usize;
                counts.decrement_serial(w, d, old);
                self.nd_doc[old] -= 1;
                self.fact[old] = self.nd_doc[old] as f64 + self.alpha;
                self.recip
                    .refresh(&self.tables, old, nt[old].load(Ordering::Relaxed));

                let nw_row = counts.nw_row(w);
                let acc = match &self.combined {
                    Some(comb) => weights_combined(
                        comb,
                        &self.tables,
                        &self.recip,
                        &self.fact,
                        &mut self.buf,
                        nw_row,
                        w,
                    ),
                    None => weights_scattered(
                        &self.tables,
                        &self.recip,
                        &self.fact,
                        &mut self.buf,
                        nw_row,
                        w,
                    ),
                };

                let new = if acc > 0.0 && acc.is_finite() {
                    let u = rng.gen::<f64>() * acc;
                    binary_search_cumulative(&self.buf, u)
                } else {
                    // Every topic has zero weight (possible under CTM when
                    // the word is outside all concept bags): fall back to a
                    // uniform topic so the chain stays well defined.
                    rng.gen_range(0..t_count)
                };
                z[d][j] = idx_u32(new);
                counts.increment_serial(w, d, new);
                if self.nd_doc[new] == 0 {
                    self.active.push(idx_u32(new));
                }
                self.nd_doc[new] += 1;
                self.fact[new] = self.nd_doc[new] as f64 + self.alpha;
                self.recip
                    .refresh(&self.tables, new, nt[new].load(Ordering::Relaxed));
            }
            self.leave_doc();
        }
    }

    /// Initialize `fact`/`nd_doc`/`active` for a document from its current
    /// assignments (`O(n_d)`, not `O(T)`).
    fn enter_doc(&mut self, z_doc: &[u32]) {
        for &t32 in z_doc {
            let t = t32 as usize;
            if self.nd_doc[t] == 0 {
                self.active.push(t32);
            }
            self.nd_doc[t] += 1;
        }
        for i in 0..self.active.len() {
            let t = self.active[i] as usize;
            self.fact[t] = self.nd_doc[t] as f64 + self.alpha;
        }
    }

    /// Reset the entries touched by the current document (idempotent over
    /// duplicate `active` entries).
    fn leave_doc(&mut self) {
        for i in 0..self.active.len() {
            let t = self.active[i] as usize;
            self.nd_doc[t] = 0;
            self.fact[t] = self.alpha;
        }
        self.active.clear();
    }
}

/// The weight pass over all topics for one token, reading per-word prior
/// values from the word-major [`Combined`] channels (contiguous loads).
/// Fills `buf` with inclusive prefix sums and returns the total.
#[inline]
fn weights_combined(
    comb: &Combined,
    tables: &SweepTables<'_>,
    recip: &RecipCache,
    fact: &[f64],
    buf: &mut [f64],
    nw_row: &[std::sync::atomic::AtomicU32],
    w: usize,
) -> f64 {
    let f_base = w * comb.n_f64;
    let m_base = w * comb.n_mask;
    let int_base = w * comb.n_int * comb.a;
    let a = comb.a;
    let t_count = tables.kinds.len();
    // One up-front shape check lets the compiler elide the per-topic bounds
    // checks inside the hot loop.
    assert!(
        tables.add.len() == t_count
            && recip.recip.len() == t_count
            && fact.len() == t_count
            && buf.len() == t_count
            && nw_row.len() == t_count
    );
    let int_rows = &comb.ints[int_base..int_base + comb.n_int * a];
    let qr_all = &recip.qr[..comb.n_int * a];
    // All-integrated fast path (the full Source-LDA model with no
    // unlabeled topics): walk the word's λ-row block and the qr cache as
    // aligned chunk iterators — no per-topic kind dispatch, no slice
    // bounds checks.
    let off_row = &comb.int_off[w * comb.n_int..(w + 1) * comb.n_int];
    if comb.n_int == t_count && a > 0 {
        assert!(recip.int_s1.len() == t_count && recip.int_s2_zero.len() == t_count);
        let mut acc = 0.0;
        for (t, (row, qr)) in int_rows
            .chunks_exact(a)
            .zip(qr_all.chunks_exact(a))
            .enumerate()
        {
            let nw = nw_row[t].load(Ordering::Relaxed) as f64;
            // Off-support rows equal the topic's zero row, whose S2 is
            // cached — the common case needs no per-level work at all.
            let s2 = if off_row[t] {
                recip.int_s2_zero[t]
            } else {
                dot_mod4(row, qr)
            };
            let weight = (nw * recip.int_s1[t] + s2) * fact[t];
            acc += weight;
            buf[t] = acc;
        }
        return acc;
    }
    let mut acc = 0.0;
    for (t, &kind) in tables.kinds.iter().enumerate() {
        let nw = nw_row[t].load(Ordering::Relaxed) as f64;
        let weight = match kind {
            Kind::Symmetric => (nw + tables.add[t]) * recip.recip[t],
            Kind::Fixed(j) => (nw + comb.f64s[f_base + j as usize]) * recip.recip[t],
            Kind::Integrated(j) => {
                // Uniform level count in combined mode: topic `j`'s qr row
                // sits at `j*a` (`IntFlat::qr_base` degenerates to that).
                let j = j as usize;
                let s2 = if off_row[j] {
                    recip.int_s2_zero[j]
                } else {
                    let row = &int_rows[j * a..(j + 1) * a];
                    let qr = &qr_all[j * a..(j + 1) * a];
                    dot_mod4(row, qr)
                };
                nw * recip.int_s1[j] + s2
            }
            Kind::Frozen(j) => comb.f64s[f_base + j as usize],
            Kind::ConceptSet(j) => {
                if comb.masks[m_base + j as usize] {
                    (nw + tables.add[t]) * recip.recip[t]
                } else {
                    0.0
                }
            }
        } * fact[t];
        acc += weight;
        buf[t] = acc;
    }
    acc
}

/// The same weight pass reading each prior's own storage — the fallback
/// when the combined table is unavailable (mixed quadrature depths or the
/// [`MAX_COMBINED_BYTES`] budget). Arithmetic is identical to
/// [`weights_combined`]; only the memory layout differs.
#[inline]
fn weights_scattered(
    tables: &SweepTables<'_>,
    recip: &RecipCache,
    fact: &[f64],
    buf: &mut [f64],
    nw_row: &[std::sync::atomic::AtomicU32],
    w: usize,
) -> f64 {
    let mut acc = 0.0;
    for (t, &kind) in tables.kinds.iter().enumerate() {
        let nw = nw_row[t].load(Ordering::Relaxed) as f64;
        let weight = match kind {
            Kind::Symmetric => (nw + tables.add[t]) * recip.recip[t],
            Kind::Fixed(_) => (nw + tables.rows[t][w]) * recip.recip[t],
            Kind::Integrated(j) => {
                let f = &tables.ints[j as usize];
                let s2 = if f.table.zero_row().is_some() && f.table.is_off_support(w) {
                    recip.int_s2_zero[j as usize]
                } else {
                    let row = f.table.delta_row(w);
                    let qr = &recip.qr[f.qr_base..f.qr_base + f.levels];
                    dot_mod4(row, qr)
                };
                nw * recip.int_s1[j as usize] + s2
            }
            Kind::Frozen(_) => tables.rows[t][w],
            Kind::ConceptSet(_) => {
                if tables.masks[t][w] {
                    (nw + tables.add[t]) * recip.recip[t]
                } else {
                    0.0
                }
            }
        } * fact[t];
        acc += weight;
        buf[t] = acc;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::CountMatrices;
    use proptest::prelude::*;
    use srclda_knowledge::{SmoothingFunction, SourceTopic};
    use srclda_math::{rng_from_seed, DiscretizedGaussian};

    /// One prior of every kind over a shared vocabulary.
    fn mixed_priors(v: usize, counts: &[f64], bag: &[u32], levels: usize) -> Vec<TopicPrior> {
        let topic = SourceTopic::new("T", counts.to_vec());
        let quad = DiscretizedGaussian::unit_interval(0.6, 0.25, levels).unwrap();
        let g = SmoothingFunction::identity();
        vec![
            TopicPrior::symmetric(0.37, v).unwrap(),
            TopicPrior::fixed_from_source(&topic, 0.01),
            TopicPrior::integrated(&topic, 0.01, &g, &quad),
            TopicPrior::frozen_from_source(&topic, 0.01),
            TopicPrior::concept_set(bag, 0.5, v).unwrap(),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The flat-table weight matches `TopicPrior::word_weight` **bit
        /// for bit** across all five prior kinds and random counts — the
        /// contract that lets the kernel walk the dense sweep's exact
        /// chain.
        #[test]
        fn flat_weights_match_word_weight_bitwise(
            raw_counts in prop::collection::vec(0u32..300, 5..24),
            bag in prop::collection::vec(0u32..5, 0..8),
            levels in 2usize..6,
            w_pick in 0usize..1000,
            nw in 0u32..40,
            extra_nt in 0u32..500,
        ) {
            let counts: Vec<f64> = raw_counts.iter().map(|&c| c as f64).collect();
            let v = counts.len();
            let bag: Vec<u32> = bag.into_iter().filter(|&b| (b as usize) < v).collect();
            let priors = mixed_priors(v, &counts, &bag, levels);
            let tables = SweepTables::new(&priors);
            let w = w_pick % v;
            let nwf = nw as f64;
            let ntf = (nw + extra_nt) as f64;
            for (t, prior) in priors.iter().enumerate() {
                let reference = prior.word_weight(w, nwf, ntf);
                let flat = tables.weight_at(t, w, nwf, ntf);
                prop_assert_eq!(flat.to_bits(), reference.to_bits());
            }
        }

        /// The word-major combined channels and the scattered per-prior
        /// reads produce bit-identical prefix sums for every word.
        #[test]
        fn combined_weight_pass_matches_scattered(
            raw_counts in prop::collection::vec(0u32..200, 6..20),
            bag in prop::collection::vec(0u32..6, 1..6),
            levels in 2usize..6,
            nw_fills in prop::collection::vec(0u32..25, 5..6),
        ) {
            let counts: Vec<f64> = raw_counts.iter().map(|&c| c as f64).collect();
            let v = counts.len();
            let bag: Vec<u32> = bag.into_iter().filter(|&b| (b as usize) < v).collect();
            let priors = mixed_priors(v, &counts, &bag, levels);
            let tables = SweepTables::new(&priors);
            let comb = Combined::build(&tables, v).expect("within budget");
            let matrices = CountMatrices::new(v, priors.len(), &[32]);
            for (t, &n) in nw_fills.iter().enumerate() {
                for _ in 0..n {
                    matrices.increment_serial(t % v, 0, t);
                }
            }
            let cache = RecipCache::new(&tables, &matrices);
            let fact = vec![0.7; priors.len()];
            let mut buf_a = vec![0.0; priors.len()];
            let mut buf_b = vec![0.0; priors.len()];
            for w in 0..v {
                let nw_row = matrices.nw_row(w);
                let a = weights_combined(&comb, &tables, &cache, &fact, &mut buf_a, nw_row, w);
                let b = weights_scattered(&tables, &cache, &fact, &mut buf_b, nw_row, w);
                prop_assert_eq!(a.to_bits(), b.to_bits());
                for (x, y) in buf_a.iter().zip(&buf_b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }

        /// A cached reciprocal refreshed from the live counts equals the
        /// freshly computed one bit for bit, for every kind.
        #[test]
        fn cached_reciprocals_match_fresh_evaluation(
            raw_counts in prop::collection::vec(1u32..200, 6..16),
            levels in 2usize..5,
            nt_seq in prop::collection::vec(0u32..100, 1..8),
            nw in 0u32..30,
        ) {
            let counts: Vec<f64> = raw_counts.iter().map(|&c| c as f64).collect();
            let v = counts.len();
            let priors = mixed_priors(v, &counts, &[0, 2], levels);
            let tables = SweepTables::new(&priors);
            let matrices = CountMatrices::new(v, priors.len(), &[64]);
            let mut cache = RecipCache::new(&tables, &matrices);
            let nwf = nw as f64;
            for &bump in &nt_seq {
                for t in 0..priors.len() {
                    for _ in 0..bump {
                        matrices.increment_serial(0, 0, t);
                    }
                    cache.refresh(&tables, t, matrices.nt(t));
                    let ntf = matrices.nt(t) as f64;
                    // Reconstruct the cached-path weight at word 0 (inside
                    // the concept bag, so every kind exercises its real
                    // formula) and compare with the fresh-reciprocal path.
                    let cached = match tables.kinds[t] {
                        Kind::Symmetric | Kind::ConceptSet(_) => {
                            (nwf + tables.add[t]) * cache.recip[t]
                        }
                        Kind::Fixed(_) => (nwf + tables.rows[t][0]) * cache.recip[t],
                        Kind::Integrated(i) => {
                            let f = &tables.ints[i as usize];
                            let row = f.table.delta_row(0);
                            let qr = &cache.qr[f.qr_base..f.qr_base + f.levels];
                            nwf * cache.int_s1[i as usize] + dot_mod4(row, qr)
                        }
                        Kind::Frozen(_) => tables.rows[t][0],
                    };
                    let fresh = tables.weight_at(t, 0, nwf, ntf);
                    prop_assert_eq!(cached.to_bits(), fresh.to_bits());
                }
            }
        }
    }

    /// The combined-table byte estimate must fall back (`None`) both just
    /// past the budget and — the regression this pins — when `V ·
    /// bytes_per_word` overflows `usize` entirely. Before the checked
    /// arithmetic, `(1 << 61) + 1` words × 8 bytes wrapped around to 8,
    /// sailed under the 512MB budget, and the build attempted an
    /// exbibyte-scale allocation.
    #[test]
    fn combined_budget_check_survives_byte_overflow() {
        let topic = SourceTopic::new("T", vec![4.0, 2.0, 1.0, 0.0]);
        let priors = vec![TopicPrior::fixed_from_source(&topic, 0.01)];
        let tables = SweepTables::new(&priors);
        // One Fixed topic → 8 bytes per word. In-budget builds are covered
        // by the proptests above at small V; building a 512MB table here
        // just to probe the boundary from below isn't worth the allocation.
        assert!(Combined::build(&tables, MAX_COMBINED_BYTES / 8 + 1).is_none());
        // 8 * ((1 << 61) + 1) ≡ 8 (mod 2^64): the unchecked estimate wraps
        // below the budget.
        assert!(Combined::build(&tables, (1usize << 61) + 1).is_none());
        assert!(Combined::build(&tables, usize::MAX).is_none());
    }

    /// Mixed-prior fixture shared with the chain-equivalence test.
    fn fixture() -> (Vec<Vec<u32>>, Vec<TopicPrior>) {
        let tokens = vec![
            vec![0, 1, 2, 0, 3, 4],
            vec![4, 5, 4, 1],
            vec![2, 2, 3, 5, 0, 1, 5],
        ];
        let t0 = SourceTopic::new("A", vec![5.0, 3.0, 0.0, 0.0, 1.0, 0.0]);
        let t1 = SourceTopic::new("B", vec![0.0, 0.0, 4.0, 4.0, 0.0, 2.0]);
        let quad = DiscretizedGaussian::unit_interval(0.7, 0.3, 4).unwrap();
        let g = SmoothingFunction::identity();
        let priors = vec![
            TopicPrior::symmetric(0.1, 6).unwrap(),
            TopicPrior::fixed_from_source(&t0, 0.01),
            TopicPrior::integrated(&t1, 0.01, &g, &quad),
            TopicPrior::frozen_from_source(&t0, 0.01),
            TopicPrior::concept_set(&[0, 1, 2, 3], 0.5, 6).unwrap(),
        ];
        (tokens, priors)
    }

    /// Same seed → the kernel sweep and the dense reference sweep walk the
    /// identical `z` trajectory over a fixture mixing all five prior kinds.
    #[test]
    fn kernel_chain_matches_dense_reference() {
        let run = |kernel: bool| -> Vec<Vec<u32>> {
            let (tokens, priors) = fixture();
            let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
            let counts = CountMatrices::new(6, priors.len(), &doc_lens);
            let mut rng = rng_from_seed(2024);
            let mut z: Vec<Vec<u32>> = tokens
                .iter()
                .enumerate()
                .map(|(d, doc)| {
                    doc.iter()
                        .map(|&w| {
                            let t = rng.gen_range(0..priors.len());
                            counts.increment(w as usize, d, t);
                            t as u32
                        })
                        .collect()
                })
                .collect();
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &counts,
                priors: &priors,
                alpha: 0.4,
            };
            if kernel {
                let mut k = Kernel::new(&ctx, None);
                for _ in 0..40 {
                    k.sweep(&ctx, &mut z, &mut rng);
                    assert!(counts.check_invariants());
                }
            } else {
                let mut buf = vec![0.0; priors.len()];
                for _ in 0..40 {
                    super::super::serial::sweep(&ctx, &mut z, &mut rng, &mut buf);
                }
            }
            z
        };
        assert_eq!(run(true), run(false), "kernel diverged from dense sweep");
    }

    /// The zero-weight fallback (all-concept priors covering no word) stays
    /// on the dense sweep's RNG stream.
    #[test]
    fn zero_weight_fallback_matches_dense_reference() {
        let run = |kernel: bool| -> Vec<Vec<u32>> {
            let tokens = vec![vec![0, 1, 0]];
            let priors = vec![
                TopicPrior::concept_set(&[], 0.5, 2).unwrap(),
                TopicPrior::concept_set(&[], 0.5, 2).unwrap(),
            ];
            let counts = CountMatrices::new(2, 2, &[3]);
            let mut rng = rng_from_seed(5);
            let mut z: Vec<Vec<u32>> = vec![tokens[0]
                .iter()
                .map(|&w| {
                    let t = rng.gen_range(0..2);
                    counts.increment(w as usize, 0, t);
                    t as u32
                })
                .collect()];
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &counts,
                priors: &priors,
                alpha: 0.5,
            };
            if kernel {
                let mut k = Kernel::new(&ctx, None);
                for _ in 0..6 {
                    k.sweep(&ctx, &mut z, &mut rng);
                }
            } else {
                let mut buf = vec![0.0; 2];
                for _ in 0..6 {
                    super::super::serial::sweep(&ctx, &mut z, &mut rng, &mut buf);
                }
            }
            z
        };
        assert_eq!(run(true), run(false));
    }
}
