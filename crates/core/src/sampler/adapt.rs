//! Topic-sharded λ-adaptation.
//!
//! The adaptive-λ step re-weights every λ-integrated prior's quadrature
//! levels from its own topic's current counts column (griddy Gibbs over
//! the discretized λ levels — `IntegrationTable::adapt`). Each topic reads
//! only `n_{·t}` and writes only its own table, so topics are embarrassingly
//! parallel, and the per-topic cost — an O(V) non-zero scan plus an
//! O(A · k_t) level re-weighting — is *serial* in the fitting loop today.
//! With the sub-linear [`sparse`](super::sparse) kernel dropping sweep cost
//! to O(k_d + k_w) per token, the serial O(T·V) adaptation becomes the
//! bottleneck at large T; this module shards it by topic the way
//! [`shard`](super::shard) shards documents.
//!
//! ## Determinism contract (mirrors document sharding)
//!
//! The result is **bit-identical** for any shard count and any thread
//! count, by construction rather than by partition care: each topic's
//! adaptation is a pure function of `(its prior, its counts column)`, no
//! adaptation reads another topic's prior, and no RNG is involved. The
//! shard partition therefore only schedules work — unlike the document
//! shards, it cannot move a bit even in principle. Sharding is still
//! contiguous-by-topic ([`partition_topics`] balances the number of
//! λ-integrated topics per shard, since non-integrated topics are skipped
//! in O(1)) so each worker touches a contiguous prior slice.
//!
//! `tests/shard_equivalence.rs` pins the contract end to end: adapted
//! priors (and the chains that continue from them) bit-identical for 1 vs
//! N adaptation shards and invariant to thread count.

use crate::counts::CountMatrices;
use crate::prior::TopicPrior;
use std::ops::Range;

/// Partition `priors` into at most `shards` contiguous topic ranges with a
/// near-equal number of λ-integrated topics each (the unit of real work).
/// A pure function of the prior kinds and `shards` — never of thread count
/// or machine.
pub fn partition_topics(priors: &[TopicPrior], shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    let t_count = priors.len();
    // cumulative[t] = integrated topics in [0, t).
    let mut cumulative = Vec::with_capacity(t_count + 1);
    let mut acc = 0u64;
    cumulative.push(0u64);
    for prior in priors {
        acc += u64::from(prior.is_integrated());
        cumulative.push(acc);
    }
    let total = acc;
    let boundary = |i: usize| -> usize {
        let target = total * i as u64 / shards as u64;
        cumulative.partition_point(|&c| c < target)
    };
    let mut ranges = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for i in 1..=shards {
        let hi = if i == shards {
            t_count
        } else {
            boundary(i).max(lo).min(t_count)
        };
        ranges.push(lo..hi);
        lo = hi;
    }
    ranges
}

/// Adapt one contiguous slice of priors (topics `range`, already split off
/// so the slice indexes from zero) against the global counts.
fn adapt_slice(priors: &mut [TopicPrior], base: usize, counts: &CountMatrices) {
    let v = counts.vocab_size();
    for (i, prior) in priors.iter_mut().enumerate() {
        if !prior.is_integrated() {
            continue;
        }
        let t = base + i;
        let nt = counts.nt(t);
        let nonzero = (0..v).filter_map(|w| {
            let n = counts.nw(w, t);
            (n > 0).then_some((w, n))
        });
        prior.adapt_lambda(nonzero, nt);
    }
}

/// Re-weight every λ-integrated prior's quadrature levels with its topic's
/// current counts, sharded by topic across `threads` workers. Bit-identical
/// to the serial loop for every `threads ≥ 1` (see module docs); `threads`
/// is clamped to the shard count, and `threads == 1` (or a single
/// integrated topic) short-circuits to the serial path with no scope setup.
pub fn adapt_integrated_priors(priors: &mut [TopicPrior], counts: &CountMatrices, threads: usize) {
    let threads = threads.max(1);
    let integrated = priors.iter().filter(|p| p.is_integrated()).count();
    if threads == 1 || integrated <= 1 {
        adapt_slice(priors, 0, counts);
        return;
    }
    let shards = threads.min(integrated);
    let ranges = partition_topics(priors, shards);
    // Split the prior slice at the shard boundaries so each worker owns a
    // disjoint `&mut` chunk.
    let mut jobs: Vec<(usize, &mut [TopicPrior])> = Vec::with_capacity(shards);
    let mut rest = priors;
    let mut consumed = 0usize;
    for range in &ranges {
        let (chunk, tail) = rest.split_at_mut(range.end - consumed);
        jobs.push((range.start, chunk));
        consumed = range.end;
        rest = tail;
    }
    crossbeam::thread::scope(|scope| {
        for (base, chunk) in jobs {
            scope.spawn(move |_| adapt_slice(chunk, base, counts));
        }
    })
    .expect("adaptation worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_knowledge::{SmoothingFunction, SourceTopic};
    use srclda_math::DiscretizedGaussian;

    fn priors_fixture(v: usize, integrated: usize, plain: usize) -> Vec<TopicPrior> {
        let quad = DiscretizedGaussian::unit_interval(0.6, 0.25, 4).unwrap();
        let g = SmoothingFunction::identity();
        let mut priors = Vec::new();
        for i in 0..integrated {
            let counts: Vec<f64> = (0..v).map(|w| ((w + i) % 5) as f64).collect();
            let topic = SourceTopic::new(format!("T{i}"), counts);
            priors.push(TopicPrior::integrated(&topic, 0.01, &g, &quad));
            if priors.len() % 3 == 0 && plain > 0 {
                priors.push(TopicPrior::symmetric(0.1, v).unwrap());
            }
        }
        while priors.iter().filter(|p| !p.is_integrated()).count() < plain {
            priors.push(TopicPrior::symmetric(0.1, v).unwrap());
        }
        priors
    }

    fn filled_counts(v: usize, t_count: usize) -> CountMatrices {
        let counts = CountMatrices::new(v, t_count, &[64]);
        for w in 0..v {
            for t in 0..t_count {
                for _ in 0..((w * 7 + t * 3) % 4) {
                    counts.increment_serial(w, 0, t);
                }
            }
        }
        counts
    }

    /// Shard boundaries balance integrated topics and cover every topic
    /// exactly once, for any shard count.
    #[test]
    fn partition_covers_all_topics() {
        let priors = priors_fixture(12, 7, 4);
        for shards in 1..=9 {
            let ranges = partition_topics(&priors, shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, priors.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous coverage");
            }
        }
    }

    /// The parallel adaptation is bit-identical to the serial loop for any
    /// thread count — the core determinism contract.
    #[test]
    fn sharded_adaptation_is_bit_identical_to_serial() {
        let v = 24;
        let reference = {
            let mut priors = priors_fixture(v, 6, 3);
            let counts = filled_counts(v, priors.len());
            adapt_integrated_priors(&mut priors, &counts, 1);
            priors
        };
        for threads in [2, 3, 8, 64] {
            let mut priors = priors_fixture(v, 6, 3);
            let counts = filled_counts(v, priors.len());
            adapt_integrated_priors(&mut priors, &counts, threads);
            for (t, (a, b)) in priors.iter().zip(&reference).enumerate() {
                assert_eq!(
                    a.to_raw(),
                    b.to_raw(),
                    "topic {t} diverged at {threads} threads"
                );
            }
        }
    }
}
