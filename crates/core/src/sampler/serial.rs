//! The **dense reference** serial collapsed Gibbs sweep (the `Sample`
//! procedure of the paper's Algorithm 1), exposed as
//! [`Backend::SerialDense`](crate::sampler::Backend::SerialDense).
//!
//! Per token: decrement the counts for the current assignment, accumulate
//! the unnormalized topic probabilities `p_t` (Eq. 2 for symmetric/fixed
//! topics, Eq. 3 for λ-integrated topics) as a running inclusive prefix sum,
//! draw one uniform, binary-search the prefix, and re-increment.
//!
//! The document-length denominator `n_d + Kα` of the topic prior is constant
//! across topics for a fixed token and therefore dropped (it cancels in the
//! categorical normalization).
//!
//! This loop is the semantic baseline the optimized kernel
//! ([`crate::sampler::kernel`]) must match bit for bit; production serial
//! sampling routes through the kernel instead. Keep the two in lock-step
//! when touching either.

use super::{idx_u32, SweepContext};
use rand::Rng;
use srclda_math::categorical::binary_search_cumulative;
use srclda_math::SldaRng;
use std::sync::atomic::Ordering;

/// One full sweep over every token of every document.
pub(crate) fn sweep(
    ctx: &SweepContext<'_>,
    z: &mut [Vec<u32>],
    rng: &mut SldaRng,
    buf: &mut [f64],
) {
    let t_count = ctx.num_topics();
    debug_assert_eq!(buf.len(), t_count);
    let alpha = ctx.alpha;
    let nt = ctx.counts.nt_all();
    for (d, doc_tokens) in ctx.tokens.iter().enumerate() {
        let nd_row = ctx.counts.nd_row(d);
        for (j, &word) in doc_tokens.iter().enumerate() {
            let w = word as usize;
            let old = z[d][j] as usize;
            ctx.counts.decrement(w, d, old);
            let nw_row = ctx.counts.nw_row(w);
            let mut acc = 0.0;
            for t in 0..t_count {
                let weight = ctx.priors[t].word_weight(
                    w,
                    nw_row[t].load(Ordering::Relaxed) as f64,
                    nt[t].load(Ordering::Relaxed) as f64,
                ) * (nd_row[t].load(Ordering::Relaxed) as f64 + alpha);
                acc += weight;
                buf[t] = acc;
            }
            let new = if acc > 0.0 && acc.is_finite() {
                let u = rng.gen::<f64>() * acc;
                binary_search_cumulative(buf, u)
            } else {
                // Every topic has zero weight (possible under CTM when the
                // word is outside all concept bags): fall back to a uniform
                // topic so the chain stays well defined.
                rng.gen_range(0..t_count)
            };
            z[d][j] = idx_u32(new);
            ctx.counts.increment(w, d, new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::CountMatrices;
    use crate::prior::TopicPrior;
    use srclda_math::rng_from_seed;

    /// Two documents over a 4-word vocabulary and two strongly-separated
    /// fixed priors.
    fn fixture() -> (Vec<Vec<u32>>, CountMatrices, Vec<TopicPrior>) {
        // vocab: 0 = pencil, 1 = ruler, 2 = baseball, 3 = umpire
        let tokens = vec![vec![0, 0, 3], vec![1, 1, 2]];
        let counts = CountMatrices::new(4, 2, &[3, 3]);
        let school = srclda_knowledge::SourceTopic::new("School", vec![10.0, 10.0, 0.0, 0.0]);
        let sports = srclda_knowledge::SourceTopic::new("Sports", vec![0.0, 0.0, 10.0, 10.0]);
        let priors = vec![
            TopicPrior::fixed_from_source(&school, 0.01),
            TopicPrior::fixed_from_source(&sports, 0.01),
        ];
        (tokens, counts, priors)
    }

    fn init_assignments(
        tokens: &[Vec<u32>],
        counts: &CountMatrices,
        rng: &mut srclda_math::SldaRng,
    ) -> Vec<Vec<u32>> {
        tokens
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..counts.num_topics()) as u32;
                        counts.increment(w as usize, d, t as usize);
                        t
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sweep_preserves_count_invariants() {
        let (tokens, counts, priors) = fixture();
        let mut rng = rng_from_seed(5);
        let mut z = init_assignments(&tokens, &counts, &mut rng);
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        let mut buf = vec![0.0; 2];
        for _ in 0..20 {
            sweep(&ctx, &mut z, &mut rng, &mut buf);
            assert!(counts.check_invariants());
        }
    }

    #[test]
    fn sweep_separates_topics_under_strong_priors() {
        let (tokens, counts, priors) = fixture();
        let mut rng = rng_from_seed(7);
        let mut z = init_assignments(&tokens, &counts, &mut rng);
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.1,
        };
        let mut buf = vec![0.0; 2];
        for _ in 0..100 {
            sweep(&ctx, &mut z, &mut rng, &mut buf);
        }
        // pencil/ruler tokens → topic 0; baseball/umpire → topic 1.
        assert_eq!(z[0][0], 0, "pencil should map to School");
        assert_eq!(z[0][1], 0);
        assert_eq!(z[1][0], 0, "ruler should map to School");
        assert_eq!(z[0][2], 1, "umpire should map to Sports");
        assert_eq!(z[1][2], 1, "baseball should map to Sports");
    }

    #[test]
    fn sweep_is_deterministic_in_seed() {
        let run = || {
            let (tokens, counts, priors) = fixture();
            let mut rng = rng_from_seed(11);
            let mut z = init_assignments(&tokens, &counts, &mut rng);
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &counts,
                priors: &priors,
                alpha: 0.5,
            };
            let mut buf = vec![0.0; 2];
            for _ in 0..10 {
                sweep(&ctx, &mut z, &mut rng, &mut buf);
            }
            z
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_weight_fallback_keeps_chain_alive() {
        // Concept priors covering neither word 0 nor 1 at all.
        let tokens = vec![vec![0, 1]];
        let counts = CountMatrices::new(2, 2, &[2]);
        let priors = vec![
            TopicPrior::concept_set(&[], 0.5, 2).unwrap(),
            TopicPrior::concept_set(&[], 0.5, 2).unwrap(),
        ];
        let mut rng = rng_from_seed(13);
        let mut z = init_assignments(&tokens, &counts, &mut rng);
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        let mut buf = vec![0.0; 2];
        for _ in 0..5 {
            sweep(&ctx, &mut z, &mut rng, &mut buf);
            assert!(counts.check_invariants());
        }
    }
}
