//! The paper's exact parallel sampling algorithms (§III.C.4).
//!
//! Both algorithms parallelize the *per-token* categorical draw over the
//! topic axis while preserving the exact sampling distribution of the serial
//! sampler (they only reorganize the prefix-sum computation):
//!
//! * **Algorithm 3 — Simple Parallel Sampling** ([`Algo::Simple`]): each of
//!   `P` workers computes the weights for a contiguous topic block and
//!   scans it locally; the leader accumulates block totals into offsets;
//!   workers add their offsets in parallel ("the remaining necessary
//!   items"); the leader binary-searches the now-global prefix vector.
//! * **Algorithm 2 — Prefix Sums Sampling** ([`Algo::PrefixSums`]): the full
//!   Blelloch work-efficient scan (up-sweep, down-sweep, inclusive shift)
//!   over a power-of-two-padded probability buffer, with every level split
//!   across workers and fenced by a barrier.
//!
//! All participants execute the same deterministic token loop in lockstep.
//! Worker 0 (the caller's thread) is the **leader**: it owns the RNG and the
//! assignment vector, performs the decrement/increment bookkeeping, draws
//! exactly one uniform per token, and runs the trace callback between
//! sweeps. Counts are shared through the relaxed atomics of
//! [`CountMatrices`](crate::counts::CountMatrices); ordering between phases
//! comes from the [`SpinBarrier`].

use super::kernel::SweepTables;
use super::{debug_assert_counts, idx_u32, SweepContext};
use crate::sync::{SharedF64Buffer, SharedF64Cell, SharedUsizeCell, SpinBarrier};
use rand::Rng;
use srclda_math::SldaRng;
use std::ops::Range;
use std::sync::atomic::Ordering;

/// Which parallel algorithm to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Algo {
    /// Algorithm 3.
    Simple,
    /// Algorithm 2.
    PrefixSums,
}

/// Sentinel published by the leader when the zero-total fallback fires.
const NO_FORCED_TOPIC: usize = usize::MAX;

/// State shared by all participants for the duration of a fit.
struct Shared<'a, 'b> {
    ctx: &'a SweepContext<'b>,
    /// Flat prior tables (shared read-only). Workers compute weights
    /// through [`SweepTables::weight_at`], which derives reciprocals fresh
    /// per call — bit-identical to the serial kernel's cached evaluation,
    /// so parallel and serial chains stay in lock-step.
    tables: SweepTables<'b>,
    algo: Algo,
    iterations: usize,
    threads: usize,
    t_count: usize,
    t_pad: usize,
    /// Probability buffer (length `t_count` for Simple, `t_pad` for
    /// PrefixSums).
    prob: SharedF64Buffer,
    /// Raw (unscanned) weights — PrefixSums only.
    raw: SharedF64Buffer,
    chunk_sums: SharedF64Buffer,
    chunk_offsets: SharedF64Buffer,
    u_cell: SharedF64Cell,
    forced: SharedUsizeCell,
    barrier: SpinBarrier,
    /// Per-worker contiguous topic ranges.
    ranges: Vec<Range<usize>>,
}

impl<'a, 'b> Shared<'a, 'b> {
    fn new(ctx: &'a SweepContext<'b>, threads: usize, algo: Algo, iterations: usize) -> Self {
        let t_count = ctx.num_topics();
        let t_pad = t_count.next_power_of_two();
        let span = match algo {
            Algo::Simple => t_count,
            Algo::PrefixSums => t_pad,
        };
        let chunk = span.div_ceil(threads);
        let ranges: Vec<Range<usize>> = (0..threads)
            .map(|p| {
                let lo = (p * chunk).min(span);
                let hi = ((p + 1) * chunk).min(span);
                lo..hi
            })
            .collect();
        Self {
            ctx,
            tables: SweepTables::new(ctx.priors),
            algo,
            iterations,
            threads,
            t_count,
            t_pad,
            prob: SharedF64Buffer::new(span),
            raw: SharedF64Buffer::new(if algo == Algo::PrefixSums { t_pad } else { 0 }),
            chunk_sums: SharedF64Buffer::new(threads),
            chunk_offsets: SharedF64Buffer::new(threads),
            u_cell: SharedF64Cell::new(0.0),
            forced: SharedUsizeCell::new(NO_FORCED_TOPIC),
            barrier: SpinBarrier::new(threads),
            ranges,
        }
    }

    /// My share of the `count` active positions at one scan level.
    fn level_share(&self, p: usize, count: usize) -> Range<usize> {
        let lo = p * count / self.threads;
        let hi = (p + 1) * count / self.threads;
        lo..hi
    }
}

/// Run `iterations` sweeps with `threads` workers.
pub(crate) fn run<F: FnMut(usize)>(
    ctx: &SweepContext<'_>,
    z: &mut [Vec<u32>],
    rng: &mut SldaRng,
    iterations: usize,
    threads: usize,
    algo: Algo,
    on_sweep: &mut F,
) {
    let threads = threads.clamp(1, ctx.num_topics().max(1));
    if threads == 1 {
        // Degenerate pool: run the equivalent single-threaded arithmetic
        // through the optimized kernel (block scans with one block are the
        // plain serial scan, and the kernel is bit-identical to it).
        let mut k = super::kernel::Kernel::new(ctx, None);
        for iter in 1..=iterations {
            k.sweep(ctx, z, rng);
            debug_assert_counts(ctx, z, "parallel (degenerate pool)");
            on_sweep(iter);
        }
        return;
    }
    let shared = Shared::new(ctx, threads, algo, iterations);
    crossbeam::thread::scope(|s| {
        for p in 1..threads {
            let sh = &shared;
            s.spawn(move |_| worker_loop(p, sh));
        }
        leader_loop(&shared, z, rng, on_sweep);
    })
    .expect("sampler worker panicked");
}

/// Non-leader participants: compute phases only.
fn worker_loop(p: usize, sh: &Shared<'_, '_>) {
    for _iter in 0..sh.iterations {
        for (d, doc_tokens) in sh.ctx.tokens.iter().enumerate() {
            for &word in doc_tokens.iter() {
                token_compute_phases(p, sh, d, word as usize);
            }
        }
    }
}

/// Leader: bookkeeping + sampling around the shared compute phases.
fn leader_loop<F: FnMut(usize)>(
    sh: &Shared<'_, '_>,
    z: &mut [Vec<u32>],
    rng: &mut SldaRng,
    on_sweep: &mut F,
) {
    for iter in 1..=sh.iterations {
        for (d, doc_tokens) in sh.ctx.tokens.iter().enumerate() {
            for (j, &word) in doc_tokens.iter().enumerate() {
                let w = word as usize;
                let old = z[d][j] as usize;
                sh.ctx.counts.decrement(w, d, old);
                let new = token_leader_phases(sh, d, w, rng);
                z[d][j] = idx_u32(new);
                sh.ctx.counts.increment(w, d, new);
            }
        }
        debug_assert_counts(sh.ctx, z, "parallel scan");
        on_sweep(iter);
    }
}

/// The compute phases every participant runs, with the leader's extra work
/// factored into [`token_leader_phases`]. The barrier sequence here must
/// mirror the leader's exactly.
fn token_compute_phases(p: usize, sh: &Shared<'_, '_>, d: usize, w: usize) {
    sh.barrier.wait(); // B1: counts reflect the removed token.
    phase_weights(p, sh, d, w);
    sh.barrier.wait(); // B2: weights / chunk sums visible.
    match sh.algo {
        Algo::Simple => {
            sh.barrier.wait(); // B3: leader published offsets.
            phase_apply_offsets(p, sh);
            sh.barrier.wait(); // B4: global prefix vector ready.
        }
        Algo::PrefixSums => {
            scan_phases(p, sh);
        }
    }
}

/// Leader-side counterpart of [`token_compute_phases`]: same barriers, plus
/// offset publication and the final draw. Returns the sampled topic.
fn token_leader_phases(sh: &Shared<'_, '_>, d: usize, w: usize, rng: &mut SldaRng) -> usize {
    sh.barrier.wait(); // B1
    phase_weights(0, sh, d, w);
    sh.barrier.wait(); // B2
    match sh.algo {
        Algo::Simple => {
            // Accumulate block totals ("add the end values together").
            let mut off = 0.0;
            for q in 0..sh.threads {
                sh.chunk_offsets.set(q, off);
                off += sh.chunk_sums.get(q);
            }
            let total = off;
            publish_draw(sh, total, rng);
            sh.barrier.wait(); // B3
            phase_apply_offsets(0, sh);
            sh.barrier.wait(); // B4
        }
        Algo::PrefixSums => {
            scan_phases(0, sh);
            let total = sh.prob.get(sh.t_count - 1);
            publish_draw(sh, total, rng);
        }
    }
    let forced = sh.forced.get();
    if forced != NO_FORCED_TOPIC {
        forced
    } else {
        sh.prob
            .binary_search_cumulative(sh.u_cell.get())
            .min(sh.t_count - 1)
    }
}

/// Draw the token's uniform (or a fallback topic when the total mass is
/// degenerate) and publish it.
fn publish_draw(sh: &Shared<'_, '_>, total: f64, rng: &mut SldaRng) {
    if total > 0.0 && total.is_finite() {
        sh.u_cell.set(rng.gen::<f64>() * total);
        sh.forced.set(NO_FORCED_TOPIC);
    } else {
        sh.forced.set(rng.gen_range(0..sh.t_count));
    }
}

/// Weight computation phase. Simple: chunk-local inclusive scan plus chunk
/// total. PrefixSums: raw weights into both buffers (padding zeroed).
fn phase_weights(p: usize, sh: &Shared<'_, '_>, d: usize, w: usize) {
    let counts = sh.ctx.counts;
    let alpha = sh.ctx.alpha;
    let nw_row = counts.nw_row(w);
    let nd_row = counts.nd_row(d);
    let nt = counts.nt_all();
    let range = sh.ranges[p].clone();
    match sh.algo {
        Algo::Simple => {
            let mut acc = 0.0;
            for t in range {
                let weight = sh.tables.weight_at(
                    t,
                    w,
                    nw_row[t].load(Ordering::Relaxed) as f64,
                    nt[t].load(Ordering::Relaxed) as f64,
                ) * (nd_row[t].load(Ordering::Relaxed) as f64 + alpha);
                acc += weight;
                sh.prob.set(t, acc);
            }
            sh.chunk_sums.set(p, acc);
        }
        Algo::PrefixSums => {
            for t in range {
                let weight = if t < sh.t_count {
                    sh.tables.weight_at(
                        t,
                        w,
                        nw_row[t].load(Ordering::Relaxed) as f64,
                        nt[t].load(Ordering::Relaxed) as f64,
                    ) * (nd_row[t].load(Ordering::Relaxed) as f64 + alpha)
                } else {
                    0.0
                };
                sh.raw.set(t, weight);
                sh.prob.set(t, weight);
            }
        }
    }
}

/// Offset application phase of Algorithm 3 ("in parallel we add the
/// remaining necessary items").
fn phase_apply_offsets(p: usize, sh: &Shared<'_, '_>) {
    let off = sh.chunk_offsets.get(p);
    // lint:allow(float-eq): exact-zero test — adding 0.0 is the identity, so this only skips no-op chunks
    if off != 0.0 {
        for t in sh.ranges[p].clone() {
            sh.prob.set(t, sh.prob.get(t) + off);
        }
    }
}

/// The Blelloch scan of Algorithm 2: up-sweep, clear, down-sweep, inclusive
/// shift — each level barrier-fenced and split across participants.
fn scan_phases(p: usize, sh: &Shared<'_, '_>) {
    let n = sh.t_pad;
    // Up-sweep (reduce).
    let mut stride = 1usize;
    while stride < n {
        let step = stride * 2;
        let count = n / step;
        for k in sh.level_share(p, count) {
            let i = (k + 1) * step - 1;
            sh.prob.set(i, sh.prob.get(i) + sh.prob.get(i - stride));
        }
        stride = step;
        sh.barrier.wait();
    }
    // Clear the root (leader) — p(T−1) ← 0 in the paper's listing.
    if p == 0 {
        sh.prob.set(n - 1, 0.0);
    }
    sh.barrier.wait();
    // Down-sweep.
    let mut stride = n / 2;
    while stride > 0 {
        let step = stride * 2;
        let count = n / step;
        for k in sh.level_share(p, count) {
            let i = (k + 1) * step - 1;
            let left = sh.prob.get(i - stride);
            sh.prob.set(i - stride, sh.prob.get(i));
            sh.prob.set(i, left + sh.prob.get(i));
        }
        stride /= 2;
        sh.barrier.wait();
    }
    // Exclusive → inclusive shift so the binary search sees cumulative
    // sums that *include* each topic's own weight.
    for t in sh.ranges[p].clone() {
        sh.prob.set(t, sh.prob.get(t) + sh.raw.get(t));
    }
    sh.barrier.wait();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::CountMatrices;
    use crate::prior::TopicPrior;
    use srclda_math::rng_from_seed;

    /// A small but non-trivial fixture: 3 docs, 6-word vocabulary, 5 topics
    /// of mixed prior kinds.
    fn fixture() -> (Vec<Vec<u32>>, Vec<TopicPrior>) {
        let tokens = vec![
            vec![0, 1, 2, 0, 3],
            vec![4, 5, 4, 1],
            vec![2, 2, 3, 5, 0, 1],
        ];
        let t0 = srclda_knowledge::SourceTopic::new("A", vec![5.0, 3.0, 0.0, 0.0, 0.0, 0.0]);
        let t1 = srclda_knowledge::SourceTopic::new("B", vec![0.0, 0.0, 4.0, 4.0, 0.0, 0.0]);
        let priors = vec![
            TopicPrior::symmetric(0.1, 6).unwrap(),
            TopicPrior::symmetric(0.1, 6).unwrap(),
            TopicPrior::fixed_from_source(&t0, 0.01),
            TopicPrior::fixed_from_source(&t1, 0.01),
            TopicPrior::symmetric(0.1, 6).unwrap(),
        ];
        (tokens, priors)
    }

    fn run_backend(algo: Option<Algo>, threads: usize, iterations: usize) -> Vec<Vec<u32>> {
        let (tokens, priors) = fixture();
        let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
        let counts = CountMatrices::new(6, priors.len(), &doc_lens);
        let mut rng = rng_from_seed(99);
        // Identical random initialization across backends.
        let mut z: Vec<Vec<u32>> = tokens
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..priors.len());
                        counts.increment(w as usize, d, t);
                        t as u32
                    })
                    .collect()
            })
            .collect();
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        match algo {
            None => {
                let mut buf = vec![0.0; priors.len()];
                for _ in 0..iterations {
                    super::super::serial::sweep(&ctx, &mut z, &mut rng, &mut buf);
                }
            }
            Some(a) => {
                run(&ctx, &mut z, &mut rng, iterations, threads, a, &mut |_| {});
            }
        }
        assert!(counts.check_invariants());
        z
    }

    #[test]
    fn simple_parallel_matches_serial_chain() {
        let serial = run_backend(None, 1, 30);
        for threads in [2, 3, 5] {
            let par = run_backend(Some(Algo::Simple), threads, 30);
            assert_eq!(serial, par, "Algorithm 3 with {threads} threads diverged");
        }
    }

    #[test]
    fn prefix_sums_matches_serial_chain() {
        let serial = run_backend(None, 1, 30);
        for threads in [2, 4] {
            let par = run_backend(Some(Algo::PrefixSums), threads, 30);
            assert_eq!(serial, par, "Algorithm 2 with {threads} threads diverged");
        }
    }

    #[test]
    fn parallel_backends_agree_with_each_other() {
        let a = run_backend(Some(Algo::Simple), 4, 20);
        let b = run_backend(Some(Algo::PrefixSums), 4, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_topics_is_clamped() {
        // 5 topics, 16 threads requested: must clamp and still run.
        let z = run_backend(Some(Algo::Simple), 16, 5);
        assert_eq!(z.len(), 3);
    }

    #[test]
    fn sweep_callback_fires_once_per_iteration() {
        let (tokens, priors) = fixture();
        let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
        let counts = CountMatrices::new(6, priors.len(), &doc_lens);
        let mut rng = rng_from_seed(1);
        let mut z: Vec<Vec<u32>> = tokens
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        counts.increment(w as usize, d, 0);
                        0u32
                    })
                    .collect()
            })
            .collect();
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        let mut seen = Vec::new();
        run(&ctx, &mut z, &mut rng, 7, 3, Algo::Simple, &mut |i| {
            seen.push(i)
        });
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7]);
    }
}
