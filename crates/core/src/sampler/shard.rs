//! Document-sharded approximate collapsed Gibbs
//! ([`Backend::ShardedDocs`](super::Backend::ShardedDocs)).
//!
//! The paper's own parallel algorithms (§III.C.4, [`super::parallel`])
//! parallelize the *per-token* topic scan, which caps out at the topic
//! count and cannot scale with corpus size. This module implements the
//! standard corpus-scale route instead — distributed/approximate collapsed
//! Gibbs over **document shards** (AD-LDA): within one sweep every shard
//! samples its documents against a frozen snapshot of the global
//! word–topic state, and the shards' count deltas are reconciled at the
//! sweep boundary. The chain is no longer the exact serial chain for
//! `S > 1` (each shard is blind to the others' intra-sweep moves — the
//! usual AD-LDA approximation, which vanishes as sweeps converge), but it
//! is **deterministic in `(seed, S)` alone**:
//!
//! * documents are partitioned into `S` contiguous, token-balanced ranges
//!   — a pure function of the corpus and `S` ([`partition_docs`]);
//! * each shard owns a private RNG stream: shards `1..S` are spawned from
//!   the run RNG in shard order, and shard `0` *continues* the run stream
//!   itself — so with `S = 1` nothing is spawned and the single shard
//!   draws the exact uniforms the kernel's single-thread backend would,
//!   making `S = 1` bit-identical to
//!   [`Backend::Serial`](super::Backend::Serial) /
//!   [`Backend::SparseKernel`](super::Backend::SparseKernel) /
//!   [`Backend::SerialDense`](super::Backend::SerialDense) per kernel
//!   (pinned by `tests/shard_equivalence.rs`);
//! * each shard sweeps through **any sweep kernel**
//!   ([`KernelKind`](super::KernelKind) — the flat serial kernel, the
//!   dense reference, or the sub-linear sparse bucket kernel) over a
//!   shard-local [`CountMatrices`]: `n_dt` rows for its own documents
//!   (documents are disjoint, so these are exact), plus a local copy of
//!   `n_wt`/`n_t` loaded from the sweep-start snapshot and updated in
//!   place as the shard moves its own tokens. The kernel is part of the
//!   determinism key — `(seed, S, kernel)` fixes the chain bits;
//! * at the sweep boundary the shard deltas are merged into the global
//!   counts **in shard order** (`global = snapshot + Σ_s (local_s −
//!   snapshot)`, wrapping arithmetic, so the merged state is exactly the
//!   counts implied by the post-sweep assignments), and the shard `n_dt`
//!   rows are copied back.
//!
//! Worker threads only *schedule* shard sweeps: each shard's sweep is a
//! pure function of (snapshot, its documents, its RNG state), so the
//! result is bit-identical whatever `threads` is — including `threads`
//! larger or smaller than `S`. λ-adaptation (and every trace callback)
//! runs on the merged global state between sweeps, exactly as in the
//! serial backends.

use super::kernel::{Combined, Kernel, SweepTables};
use super::sparse::{SparseKernel, SparseState};
use super::{debug_assert_counts, idx_u32, serial, KernelKind, SweepContext};
use crate::counts::CountMatrices;
use srclda_math::SldaRng;
use std::ops::Range;
use std::sync::Arc;

/// Partition `doc_lens`-shaped documents into `shards` contiguous ranges
/// with near-equal token mass: the boundary before shard `i` is the first
/// document whose cumulative token count reaches `i/S` of the total. A
/// pure function of the corpus shape and `S` — never of thread count or
/// machine — so the shard layout (and therefore the chain) is reproducible
/// anywhere. Some shards may be empty when `S` exceeds the document (or
/// token) count; integer-division boundaries place those empties wherever
/// the cumulative token targets collapse (possibly at the *front*), which
/// is harmless — an empty shard sweeps nothing and draws nothing.
pub(crate) fn partition_docs(tokens: &[Vec<u32>], shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    let d_count = tokens.len();
    let total: u64 = tokens.iter().map(|d| d.len() as u64).sum();
    // cumulative[d] = tokens in documents [0, d).
    let mut cumulative = Vec::with_capacity(d_count + 1);
    let mut acc = 0u64;
    cumulative.push(0u64);
    for doc in tokens {
        acc += doc.len() as u64;
        cumulative.push(acc);
    }
    let boundary = |i: usize| -> usize {
        let target = total * i as u64 / shards as u64;
        // First document index whose cumulative-before reaches the target.
        cumulative.partition_point(|&c| c < target)
    };
    let mut ranges = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for i in 1..=shards {
        let hi = if i == shards {
            d_count
        } else {
            boundary(i).max(lo).min(d_count)
        };
        ranges.push(lo..hi);
        lo = hi;
    }
    ranges
}

/// Per-shard reusable state for one `run` call: the shard's local count
/// matrices plus its kernel's reusable cache state.
struct ShardWorkspace {
    /// Global document range this shard owns.
    range: Range<usize>,
    /// Local counts: exact `n_dt` rows for the shard's documents, plus the
    /// snapshot-loaded `n_wt`/`n_t` working copy.
    local: CountMatrices,
    /// The sparse bucket kernel's reusable state for this shard
    /// (`Some` iff the shard kernel is [`KernelKind::Sparse`]). The
    /// structural parts (deviation lists, floors, dense demotions) are
    /// built once per chunk and survive every sweep; the count-dependent
    /// caches are resynced after each snapshot reload
    /// ([`SparseState::resync_counts`]).
    sparse: Option<SparseState>,
}

/// Read-only inputs every shard's sweep shares within one iteration: the
/// kernel to run, the flat kernel's one shared combined table, and the
/// sweep-start snapshot of the global word/topic counts.
struct SweepShared<'a> {
    kernel: KernelKind,
    combined: &'a Option<Arc<Combined>>,
    snapshot_nw: &'a [u32],
    snapshot_nt: &'a [u32],
}

/// One shard's sweep: refresh the local word/topic counts from the global
/// snapshot, then run one sweep of the configured kernel over the shard's
/// documents with the shard's RNG stream. Returns the sparse kernel's
/// bucket-routing tallies when the kernel is sparse.
fn shard_sweep(
    ctx: &SweepContext<'_>,
    shared: &SweepShared<'_>,
    ws: &mut ShardWorkspace,
    z_shard: &mut [Vec<u32>],
    rng: &mut SldaRng,
) -> Option<srclda_obs::SparseBucketCounts> {
    ws.local.load_nw_nt(shared.snapshot_nw, shared.snapshot_nt);
    let local_ctx = SweepContext {
        tokens: &ctx.tokens[ws.range.clone()],
        counts: &ws.local,
        priors: ctx.priors,
        alpha: ctx.alpha,
    };
    match shared.kernel {
        KernelKind::Flat => {
            // The kernel's reciprocal cache is seeded from the *current*
            // local counts, so it must be rebuilt each sweep (the snapshot
            // changed); the expensive word-major combined table is the one
            // shared copy built by [`ShardState::build`] (an `Arc` clone,
            // not a data copy).
            let mut k = Kernel::new(&local_ctx, shared.combined.clone());
            k.sweep(&local_ctx, z_shard, rng);
            None
        }
        KernelKind::Dense => {
            let mut buf = vec![0.0; local_ctx.num_topics()];
            serial::sweep(&local_ctx, z_shard, rng, &mut buf);
            None
        }
        KernelKind::Sparse => {
            // The snapshot reload replaced every local `n_wt`/`n_t`, so
            // the count-dependent bucket caches (non-zero lists,
            // reciprocals, baselines) are resynced wholesale; the
            // structural state survives from the chunk-level build.
            let tables = SweepTables::new(local_ctx.priors);
            let mut state = ws.sparse.take().unwrap_or_else(|| {
                // Self-heal (unreachable in practice): a sparse shard
                // workspace is always built with its state present.
                SparseState::build(&tables, &ws.local)
            });
            state.resync_counts(&tables, &ws.local);
            let mut k = SparseKernel::new(&local_ctx, Some(state));
            k.sweep(&local_ctx, z_shard, rng);
            let buckets = k.take_bucket_counts();
            ws.sparse = Some(k.into_state());
            Some(buckets)
        }
    }
}

/// One shard's slice of mutable sweep state: its workspace, its documents'
/// assignments, its RNG stream, and its telemetry slots (wall-clock seconds
/// the shard's sweep took plus its sparse bucket tallies — written by
/// whichever worker runs the shard).
type ShardJob<'a> = (
    &'a mut ShardWorkspace,
    &'a mut [Vec<u32>],
    &'a mut SldaRng,
    &'a mut (f64, Option<srclda_obs::SparseBucketCounts>),
);

/// The sharded backend's reusable chunk state: the document partition and
/// the per-shard workspaces (local counts plus per-shard kernel caches).
/// Carried across [`run`] calls by the fitting loop (via
/// [`super::SweepCache`]) because rebuilding it is pure waste: the
/// partition is a function of the (fixed) corpus and `S`; the local
/// `n_dt` rows were the *source* of the global rows at the last merge, so
/// they are already bit-equal; the combined tables' contents are invariant
/// under λ adaptation; and the sparse states' structural parts are
/// functions of the priors' shape, which adaptation never changes.
pub(crate) struct ShardState {
    ranges: Vec<Range<usize>>,
    workspaces: Vec<ShardWorkspace>,
    /// The sweep kernel the workspaces were built for — part of the reuse
    /// fingerprint, since per-kernel cache state differs.
    kernel: KernelKind,
    /// The flat kernel's word-major combined prior table, built **once**
    /// and shared by every shard's kernel (`None` on the kernel's fallback
    /// path — over budget or mixed quadrature depths — and for the dense
    /// and sparse kernels, which don't use it).
    combined: Option<Arc<Combined>>,
}

impl ShardState {
    fn build(ctx: &SweepContext<'_>, shards: usize, kernel: KernelKind) -> Self {
        let ranges = partition_docs(ctx.tokens, shards);
        let v = ctx.counts.vocab_size();
        let t_count = ctx.counts.num_topics();
        let tables = SweepTables::new(ctx.priors);
        // Local n_dt rows are seeded from the global matrices (which are
        // consistent with `z` at every boundary).
        let workspaces: Vec<ShardWorkspace> = ranges
            .iter()
            .map(|range| {
                let doc_lens: Vec<u32> = ctx.tokens[range.clone()]
                    .iter()
                    .map(|d| idx_u32(d.len()))
                    .collect();
                let local = CountMatrices::new(v, t_count, &doc_lens);
                for (local_d, global_d) in range.clone().enumerate() {
                    local.copy_nd_row_from(local_d, ctx.counts, global_d);
                }
                // Per-shard sparse state: the structural parts are
                // identical across shards (a pure function of the priors);
                // the count-dependent caches start out stale against the
                // zeroed local `n_wt`/`n_t` and are resynced at every
                // sweep start, after the snapshot reload.
                let sparse = match kernel {
                    KernelKind::Sparse => Some(SparseState::build(&tables, &local)),
                    KernelKind::Flat | KernelKind::Dense => None,
                };
                ShardWorkspace {
                    range: range.clone(),
                    local,
                    sparse,
                }
            })
            .collect();
        let combined = match kernel {
            KernelKind::Flat => Combined::build(&tables, v).map(Arc::new),
            KernelKind::Dense | KernelKind::Sparse => None,
        };
        Self {
            ranges,
            workspaces,
            kernel,
            combined,
        }
    }

    /// Whether this state matches the given run shape (same kernel, same
    /// shard count, same corpus extent, same count dimensions) — within
    /// one fit these never change, so a cached state from the previous
    /// chunk is valid.
    fn matches(&self, ctx: &SweepContext<'_>, shards: usize, kernel: KernelKind) -> bool {
        self.kernel == kernel
            && self.workspaces.len() == shards
            && self.ranges.last().map_or(0, |r| r.end) == ctx.tokens.len()
            && self.workspaces.iter().all(|ws| {
                ws.local.vocab_size() == ctx.counts.vocab_size()
                    && ws.local.num_topics() == ctx.counts.num_topics()
            })
    }
}

/// What one `run` call should execute: how many sweeps, how wide the
/// worker pool may go (`threads` has no effect on the result), and which
/// sweep kernel each shard drives.
pub(crate) struct RunPlan {
    pub iterations: usize,
    pub threads: usize,
    pub kernel: KernelKind,
}

/// Run the planned sharded sweeps. `shard_rngs` carries one stream per
/// shard (sampler state owned by the fitting loop so it can be
/// checkpointed); `state_cache` carries the [`ShardState`] across chunk
/// calls (pass `&mut None` to build fresh). `on_sweep` receives per-shard
/// sweep and merge wall-clock timings, plus the merged sparse bucket
/// tallies when the shard kernel is sparse — pure observation; the
/// telemetry reads touch no sampler state.
pub(crate) fn run<F: FnMut(usize, srclda_obs::ShardTimings)>(
    ctx: &SweepContext<'_>,
    z: &mut [Vec<u32>],
    shard_rngs: &mut [SldaRng],
    plan: &RunPlan,
    state_cache: &mut Option<ShardState>,
    on_sweep: &mut F,
) {
    let RunPlan {
        iterations,
        threads,
        kernel,
    } = *plan;
    let shards = shard_rngs.len();
    assert!(shards > 0, "need at least one shard RNG stream");
    let mut state = match state_cache.take() {
        Some(state) if state.matches(ctx, shards, kernel) => state,
        _ => ShardState::build(ctx, shards, kernel),
    };
    let ShardState {
        ref ranges,
        ref mut workspaces,
        kernel: _,
        ref combined,
    } = state;

    let workers = threads.clamp(1, shards);
    for iter in 1..=iterations {
        let snapshot_nw = ctx.counts.snapshot_nw();
        let snapshot_nt = ctx.counts.snapshot_nt();
        let shared = SweepShared {
            kernel,
            combined,
            snapshot_nw: &snapshot_nw,
            snapshot_nt: &snapshot_nt,
        };
        // Per-shard telemetry slots: (sweep seconds, sparse bucket tallies).
        let mut shard_stats: Vec<(f64, Option<srclda_obs::SparseBucketCounts>)> =
            vec![(0.0, None); shards];

        // Split `z` into per-shard mutable slices (ranges are contiguous
        // and ordered, so this is a sequence of split_at_mut cuts).
        let mut jobs: Vec<ShardJob<'_>> = {
            let mut rest = &mut *z;
            let mut cut_at = 0usize;
            let mut parts = Vec::with_capacity(shards);
            for range in ranges {
                let (head, tail) = rest.split_at_mut(range.end - cut_at);
                cut_at = range.end;
                parts.push(head);
                rest = tail;
            }
            workspaces
                .iter_mut()
                .zip(parts)
                .zip(shard_rngs.iter_mut())
                .zip(shard_stats.iter_mut())
                .map(|(((ws, part), rng), stats)| (ws, part, rng, stats))
                .collect()
        };

        if workers == 1 {
            for (ws, z_shard, rng, stats) in jobs.iter_mut() {
                let span = srclda_obs::SpanTimer::start();
                let buckets = shard_sweep(ctx, &shared, ws, z_shard, rng);
                **stats = (span.elapsed_secs(), buckets);
            }
        } else {
            // Strided shard→worker assignment. Scheduling is irrelevant to
            // the result (each shard sweep is self-contained), so any
            // deterministic split works; strided keeps token-balanced
            // shards balanced across workers too.
            let mut groups: Vec<Vec<ShardJob<'_>>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                groups[i % workers].push(job);
            }
            let shared = &shared;
            crossbeam::thread::scope(|scope| {
                for group in groups.iter_mut() {
                    scope.spawn(move |_| {
                        for (ws, z_shard, rng, stats) in group.iter_mut() {
                            let span = srclda_obs::SpanTimer::start();
                            let buckets = shard_sweep(ctx, shared, ws, z_shard, rng);
                            **stats = (span.elapsed_secs(), buckets);
                        }
                    });
                }
            })
            .expect("shard worker panicked");
        }

        // Merge shard deltas into the global counts, in shard order.
        let merge_span = srclda_obs::SpanTimer::start();
        let mut merged_nw = snapshot_nw.clone();
        let mut merged_nt = snapshot_nt.clone();
        for ws in workspaces.iter() {
            ws.local
                .add_deltas_into(&snapshot_nw, &snapshot_nt, &mut merged_nw, &mut merged_nt);
        }
        ctx.counts.load_nw_nt(&merged_nw, &merged_nt);
        for ws in workspaces.iter() {
            for (local_d, global_d) in ws.range.clone().enumerate() {
                ctx.counts.copy_nd_row_from(global_d, &ws.local, local_d);
            }
        }
        let merge_secs = merge_span.elapsed_secs();
        // The merge is the sharded backend's sweep boundary: globals must
        // again be the exact histogram of z.
        debug_assert_counts(ctx, z, "sharded merge");
        // Fold the per-shard bucket tallies into one sweep-level total
        // (Some iff the shard kernel is sparse).
        let mut buckets: Option<srclda_obs::SparseBucketCounts> = None;
        let mut shard_secs = Vec::with_capacity(shards);
        for (secs, shard_buckets) in shard_stats {
            shard_secs.push(secs);
            if let Some(b) = shard_buckets {
                buckets.get_or_insert_with(Default::default).absorb(b);
            }
        }
        on_sweep(
            iter,
            srclda_obs::ShardTimings {
                shard_secs,
                merge_secs,
                buckets,
            },
        );
    }
    *state_cache = Some(state);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::TopicPrior;
    use rand::Rng;
    use srclda_math::{rng_from_seed, spawn_rng};

    fn toy_tokens() -> Vec<Vec<u32>> {
        vec![
            vec![0, 1, 2, 0],
            vec![3, 3],
            vec![1, 2, 3, 0, 1],
            vec![2],
            vec![0, 1, 2, 3, 0, 1],
        ]
    }

    #[test]
    fn partition_is_contiguous_and_total() {
        let tokens = toy_tokens();
        for shards in 1..=8 {
            let ranges = partition_docs(&tokens, shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, tokens.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "ranges must tile");
            }
        }
    }

    #[test]
    fn partition_balances_tokens() {
        // 40 equal-length docs split 4 ways → exactly 10 docs per shard.
        let tokens: Vec<Vec<u32>> = (0..40).map(|_| vec![0, 1, 2]).collect();
        let ranges = partition_docs(&tokens, 4);
        for r in &ranges {
            assert_eq!(r.len(), 10, "{ranges:?}");
        }
    }

    #[test]
    fn partition_with_more_shards_than_docs_has_empty_shards() {
        let tokens = vec![vec![0u32, 1], vec![2]];
        let ranges = partition_docs(&tokens, 5);
        assert_eq!(ranges.last().unwrap().end, 2);
        let covered: usize = ranges.iter().map(Range::len).sum();
        assert_eq!(covered, 2, "every document appears exactly once");
        // Empty shards can appear anywhere the integer-division targets
        // collapse — for this shape the *first* shard is empty (3·1/5 = 0
        // tokens targeted before shard 1).
        assert!(ranges[0].is_empty());
        assert!(ranges.iter().filter(|r| r.is_empty()).count() >= 3);
    }

    /// Shared fixture: a fixed-prior model over 4 words.
    fn priors() -> Vec<TopicPrior> {
        let a = srclda_knowledge::SourceTopic::new("A", vec![8.0, 4.0, 0.0, 0.0]);
        let b = srclda_knowledge::SourceTopic::new("B", vec![0.0, 0.0, 6.0, 6.0]);
        vec![
            TopicPrior::fixed_from_source(&a, 0.01),
            TopicPrior::fixed_from_source(&b, 0.01),
            TopicPrior::symmetric(0.1, 4).unwrap(),
        ]
    }

    fn init(
        tokens: &[Vec<u32>],
        counts: &CountMatrices,
        rng: &mut SldaRng,
        t_count: usize,
    ) -> Vec<Vec<u32>> {
        tokens
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..t_count);
                        counts.increment(w as usize, d, t);
                        t as u32
                    })
                    .collect()
            })
            .collect()
    }

    /// Run the sharded sweep loop directly; returns (z, nw, nt).
    fn run_sharded(
        kernel: KernelKind,
        shards: usize,
        threads: usize,
        sweeps: usize,
    ) -> (Vec<Vec<u32>>, Vec<u32>, Vec<u32>) {
        let tokens = toy_tokens();
        let priors = priors();
        let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
        let counts = CountMatrices::new(4, priors.len(), &doc_lens);
        let mut rng = rng_from_seed(404);
        let mut z = init(&tokens, &counts, &mut rng, priors.len());
        // Stream split mirroring the fitting loop: shards 1..S spawned in
        // shard order, shard 0 continues the run stream.
        let mut shard_rngs: Vec<SldaRng> = Vec::with_capacity(shards);
        for _ in 1..shards {
            shard_rngs.push(spawn_rng(&mut rng));
        }
        shard_rngs.insert(0, rng);
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        let mut seen = Vec::new();
        run(
            &ctx,
            &mut z,
            &mut shard_rngs,
            &RunPlan {
                iterations: sweeps,
                threads,
                kernel,
            },
            &mut None,
            &mut |i, timings| {
                assert_eq!(timings.shard_secs.len(), shards, "one timing per shard");
                assert_eq!(
                    timings.buckets.is_some(),
                    kernel == KernelKind::Sparse,
                    "bucket tallies iff the shard kernel is sparse"
                );
                seen.push(i)
            },
        );
        assert_eq!(seen, (1..=sweeps).collect::<Vec<_>>());
        assert!(
            counts.check_invariants(),
            "merged counts inconsistent with assignments"
        );
        (z, counts.snapshot_nw(), counts.snapshot_nt())
    }

    #[test]
    fn merged_state_is_thread_count_invariant() {
        for kernel in [KernelKind::Flat, KernelKind::Sparse, KernelKind::Dense] {
            for shards in [1, 2, 3, 5, 7] {
                let reference = run_sharded(kernel, shards, 1, 12);
                for threads in [2, 3, 8] {
                    assert_eq!(
                        run_sharded(kernel, shards, threads, 12),
                        reference,
                        "{kernel:?} S={shards} diverged at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn single_shard_matches_serial_kernel_chain() {
        let tokens = toy_tokens();
        let priors = priors();
        let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
        let counts = CountMatrices::new(4, priors.len(), &doc_lens);
        let mut rng = rng_from_seed(404);
        let mut z = init(&tokens, &counts, &mut rng, priors.len());
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        let mut kernel = Kernel::new(&ctx, None);
        for _ in 0..12 {
            kernel.sweep(&ctx, &mut z, &mut rng);
        }
        let serial = (z, counts.snapshot_nw(), counts.snapshot_nt());
        assert_eq!(
            run_sharded(KernelKind::Flat, 1, 1, 12),
            serial,
            "S=1 must be the serial chain"
        );
    }

    #[test]
    fn single_shard_matches_sparse_kernel_chain() {
        // The sparse analogue of the test above: one sparse shard must
        // continue the run RNG stream and draw the exact uniforms
        // `Backend::SparseKernel` would, resyncing its bucket caches from
        // a snapshot that equals the global counts.
        let tokens = toy_tokens();
        let priors = priors();
        let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
        let counts = CountMatrices::new(4, priors.len(), &doc_lens);
        let mut rng = rng_from_seed(404);
        let mut z = init(&tokens, &counts, &mut rng, priors.len());
        let ctx = SweepContext {
            tokens: &tokens,
            counts: &counts,
            priors: &priors,
            alpha: 0.5,
        };
        let mut kernel = SparseKernel::new(&ctx, None);
        for _ in 0..12 {
            kernel.sweep(&ctx, &mut z, &mut rng);
        }
        let serial = (z, counts.snapshot_nw(), counts.snapshot_nt());
        assert_eq!(
            run_sharded(KernelKind::Sparse, 1, 1, 12),
            serial,
            "S=1 sparse must be the single-thread sparse chain"
        );
    }

    #[test]
    fn flat_and_dense_shard_kernels_walk_identical_chains() {
        // The flat kernel is a bit-identical optimization of the dense
        // reference; composing either with shards must preserve that.
        for shards in [1, 2, 3] {
            assert_eq!(
                run_sharded(KernelKind::Flat, shards, 1, 12),
                run_sharded(KernelKind::Dense, shards, 1, 12),
                "flat and dense kernels diverged at S={shards}"
            );
        }
    }

    #[test]
    fn different_shard_counts_walk_different_chains() {
        // Not a correctness requirement, but documents that S really is a
        // determinism parameter: S=1 and S=2 are different (approximate
        // vs exact) chains.
        assert_ne!(
            run_sharded(KernelKind::Flat, 1, 1, 12).0,
            run_sharded(KernelKind::Flat, 2, 1, 12).0
        );
    }
}
