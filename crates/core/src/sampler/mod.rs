//! Sampler backends: the optimized serial Gibbs kernel, the dense
//! reference sweep, and the paper's two exact parallel algorithms.
//!
//! All backends draw **one uniform variate per token** from the same
//! leader RNG and realize the same categorical draw, so — up to last-ulp
//! floating-point re-association in the parallel scans — they walk identical
//! chains from identical seeds. The kernel ([`kernel`]) and the dense
//! reference ([`serial`]) are bit-identical by construction (flat tables
//! and cached reciprocals reproduce `TopicPrior::word_weight` exactly).

pub mod kernel;
pub mod parallel;
pub mod serial;

use crate::counts::CountMatrices;
use crate::error::CoreError;
use crate::prior::TopicPrior;
use srclda_math::SldaRng;

/// Which sampling algorithm executes the per-token topic draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded sampling (Algorithm 1) through the optimized hot
    /// path: flat prior tables, cached reciprocals, sparse document-topic
    /// bookkeeping, non-atomic counts (see [`kernel`]).
    Serial,
    /// Single-threaded sampling through the dense reference sweep — the
    /// straightforward per-(token, topic) `word_weight` loop. Walks the
    /// same chain as [`Backend::Serial`] bit for bit; kept as the
    /// equivalence baseline and the "before" side of the
    /// `sweep_throughput` benchmark.
    SerialDense,
    /// Algorithm 2: Blelloch prefix-sums scan over the probability vector,
    /// parallelized over `threads` workers with per-level barriers.
    PrefixSums {
        /// Number of worker threads `P`.
        threads: usize,
    },
    /// Algorithm 3: per-thread block sums, one barrier, parallel fix-up.
    SimpleParallel {
        /// Number of worker threads `P`.
        threads: usize,
    },
}

impl Backend {
    /// Number of worker threads this backend uses.
    pub fn threads(&self) -> usize {
        match self {
            Backend::Serial | Backend::SerialDense => 1,
            Backend::PrefixSums { threads } | Backend::SimpleParallel { threads } => *threads,
        }
    }

    /// Check the configuration is runnable.
    pub(crate) fn validate(&self) -> crate::Result<()> {
        if self.threads() == 0 {
            return Err(CoreError::InvalidConfig(
                "parallel backends need at least one thread".into(),
            ));
        }
        Ok(())
    }
}

/// Everything a sweep needs, borrowed from the fitting engine.
pub(crate) struct SweepContext<'a> {
    /// Per-document word ids.
    pub tokens: &'a [Vec<u32>],
    /// Count matrices (shared, atomic).
    pub counts: &'a CountMatrices,
    /// Per-topic priors.
    pub priors: &'a [TopicPrior],
    /// Document–topic prior α.
    pub alpha: f64,
}

impl<'a> SweepContext<'a> {
    /// Total topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.priors.len()
    }
}

/// Run `iterations` full Gibbs sweeps with the chosen backend, mutating the
/// assignment vector `z` and the counts. `on_sweep` is invoked after every
/// sweep with the completed iteration index (1-based) for trace recording.
///
/// `combined_cache` carries the kernel's word-major combined table across
/// calls: the fitting loop invokes `run_sweeps` once per λ-adaptation chunk,
/// and the table's contents (δ/φ rows, masks, support membership) are
/// invariant under adaptation, so rebuilding the multi-MB copy per chunk
/// would be pure waste. Pass a fresh `&mut None` when no reuse applies.
pub(crate) fn run_sweeps<F: FnMut(usize)>(
    backend: Backend,
    ctx: &SweepContext<'_>,
    z: &mut [Vec<u32>],
    rng: &mut SldaRng,
    iterations: usize,
    combined_cache: &mut Option<kernel::Combined>,
    mut on_sweep: F,
) {
    match backend {
        Backend::Serial => {
            let mut k = kernel::Kernel::new(ctx, combined_cache.take());
            for iter in 1..=iterations {
                k.sweep(ctx, z, rng);
                on_sweep(iter);
            }
            *combined_cache = k.into_combined();
        }
        Backend::SerialDense => {
            let mut buf = vec![0.0; ctx.num_topics()];
            for iter in 1..=iterations {
                serial::sweep(ctx, z, rng, &mut buf);
                on_sweep(iter);
            }
        }
        Backend::SimpleParallel { threads } => {
            parallel::run(
                ctx,
                z,
                rng,
                iterations,
                threads,
                parallel::Algo::Simple,
                &mut on_sweep,
            );
        }
        Backend::PrefixSums { threads } => {
            parallel::run(
                ctx,
                z,
                rng,
                iterations,
                threads,
                parallel::Algo::PrefixSums,
                &mut on_sweep,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert_eq!(Backend::SerialDense.threads(), 1);
        assert_eq!(Backend::PrefixSums { threads: 4 }.threads(), 4);
        assert_eq!(Backend::SimpleParallel { threads: 6 }.threads(), 6);
    }

    #[test]
    fn zero_threads_invalid() {
        assert!(Backend::PrefixSums { threads: 0 }.validate().is_err());
        assert!(Backend::SimpleParallel { threads: 0 }.validate().is_err());
        assert!(Backend::Serial.validate().is_ok());
    }
}
