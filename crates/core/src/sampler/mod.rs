//! Sampler backends: the optimized serial Gibbs kernel, the dense
//! reference sweep, and the paper's two exact parallel algorithms.
//!
//! All backends draw **one uniform variate per token** from the same
//! leader RNG and realize the same categorical draw, so — up to last-ulp
//! floating-point re-association in the parallel scans — they walk identical
//! chains from identical seeds. The kernel ([`kernel`]) and the dense
//! reference ([`serial`]) are bit-identical by construction (flat tables
//! and cached reciprocals reproduce `TopicPrior::word_weight` exactly).

pub mod adapt;
pub mod kernel;
pub mod parallel;
pub mod serial;
pub mod shard;
pub mod sparse;

use crate::counts::CountMatrices;
use crate::error::CoreError;
use crate::prior::TopicPrior;
use srclda_math::SldaRng;

/// Which sampling algorithm executes the per-token topic draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded sampling (Algorithm 1) through the optimized hot
    /// path: flat prior tables, cached reciprocals, sparse document-topic
    /// bookkeeping, non-atomic counts (see [`kernel`]).
    Serial,
    /// Single-threaded sampling through the dense reference sweep — the
    /// straightforward per-(token, topic) `word_weight` loop. Walks the
    /// same chain as [`Backend::Serial`] bit for bit; kept as the
    /// equivalence baseline and the "before" side of the
    /// `sweep_throughput` benchmark.
    SerialDense,
    /// Algorithm 2: Blelloch prefix-sums scan over the probability vector,
    /// parallelized over `threads` workers with per-level barriers.
    PrefixSums {
        /// Number of worker threads `P`.
        threads: usize,
    },
    /// Algorithm 3: per-thread block sums, one barrier, parallel fix-up.
    SimpleParallel {
        /// Number of worker threads `P`.
        threads: usize,
    },
    /// Single-threaded **sub-linear** sampling through the SparseLDA-style
    /// bucket decomposition (see [`sparse`]): the per-token weight splits
    /// into a cached smoothing bucket, a cached doc bucket, and a
    /// word-sparse bucket, so each token costs O(k_d + k_w) instead of
    /// O(T). Wins when T is large and documents/words touch few topics.
    ///
    /// The chain is fully deterministic in the seed and chunk-boundary
    /// invariant, but **not** bit-equal to [`Backend::Serial`] — bucket
    /// routing consumes the per-token uniform differently. Equivalence is
    /// distribution-level: exact bucket-mass ≡ dense-mass (property-tested)
    /// and held-out perplexity parity (`tests/kernel_equivalence.rs`).
    SparseKernel,
    /// Document-sharded approximate collapsed Gibbs (AD-LDA style, see
    /// [`shard`]): documents are statically partitioned into `shards`
    /// shards; each shard sweeps against a sweep-start snapshot of the
    /// word/topic counts with its own RNG stream, and shard deltas merge
    /// into the global counts at every sweep boundary, in shard order.
    ///
    /// The chain is a pure function of `(seed, shards)` — `threads` only
    /// schedules shard work and never changes a single bit of the result —
    /// and `shards: 1` walks the exact chain of [`Backend::Serial`].
    ShardedDocs {
        /// Fixed shard count `S` (determinism granularity).
        shards: usize,
        /// Worker threads executing shard sweeps (clamped to `S`).
        threads: usize,
    },
}

impl Backend {
    /// Number of worker threads this backend uses.
    pub fn threads(&self) -> usize {
        match self {
            Backend::Serial | Backend::SerialDense | Backend::SparseKernel => 1,
            Backend::PrefixSums { threads }
            | Backend::SimpleParallel { threads }
            | Backend::ShardedDocs { threads, .. } => *threads,
        }
    }

    /// Number of document shards (1 for every non-sharded backend).
    pub fn shards(&self) -> usize {
        match self {
            Backend::ShardedDocs { shards, .. } => *shards,
            _ => 1,
        }
    }

    /// True iff this is the document-sharded backend (the only backend
    /// whose sampler state includes per-shard RNG streams).
    pub fn is_sharded(&self) -> bool {
        matches!(self, Backend::ShardedDocs { .. })
    }

    /// Check the configuration is runnable.
    pub(crate) fn validate(&self) -> crate::Result<()> {
        if self.threads() == 0 {
            return Err(CoreError::InvalidConfig(
                "parallel backends need at least one thread".into(),
            ));
        }
        if let Backend::ShardedDocs { shards: 0, .. } = self {
            return Err(CoreError::InvalidConfig(
                "sharded backend needs at least one shard".into(),
            ));
        }
        Ok(())
    }
}

/// Narrow an in-memory index (topic, word, doc position) to its `u32`
/// wire/storage width. Topic counts, vocabulary sizes, and document
/// lengths are all `u32`-sized by construction, so the cast cannot
/// truncate; debug builds verify that.
#[inline]
pub(crate) fn idx_u32(x: usize) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "index {x} exceeds u32::MAX");
    x as u32 // lint:allow(narrowing-cast): debug-asserted above; callers pass indices bounded by u32-sized T/V/doc-len
}

/// Debug-build cross-check of the sampler's core bookkeeping invariant:
/// the count matrices `nd`/`nw`/`nt` must be exactly the histograms of
/// the current assignment vector `z`. Every backend calls this at sweep
/// boundaries; a drifted counter here means a broken
/// increment/decrement pairing or a bad shard-delta merge, which would
/// otherwise surface only as silently wrong posteriors.
#[inline]
pub(crate) fn debug_assert_counts(ctx: &SweepContext<'_>, z: &[Vec<u32>], backend: &str) {
    debug_assert!(
        counts_match_assignments(ctx, z),
        "{backend}: count matrices diverged from the z histogram at a sweep boundary"
    );
}

/// Recompute `nd`/`nw`/`nt` from `(tokens, z)` and compare against the
/// live matrices. O(N + (D+V+1)·T); only debug builds evaluate it.
fn counts_match_assignments(ctx: &SweepContext<'_>, z: &[Vec<u32>]) -> bool {
    let counts = ctx.counts;
    let (v, t_count, d_count) = (counts.vocab_size(), counts.num_topics(), counts.num_docs());
    if z.len() != d_count {
        return false;
    }
    let mut nw = vec![0u32; v * t_count];
    let mut nd = vec![0u32; d_count * t_count];
    let mut nt = vec![0u32; t_count];
    for (d, (doc, zs)) in ctx.tokens.iter().zip(z).enumerate() {
        if doc.len() != zs.len() {
            return false;
        }
        for (&w, &t) in doc.iter().zip(zs) {
            let (w, t) = (w as usize, t as usize);
            if w >= v || t >= t_count {
                return false;
            }
            nw[w * t_count + t] += 1;
            nd[d * t_count + t] += 1;
            nt[t] += 1;
        }
    }
    (0..t_count).all(|t| nt[t] == counts.nt(t))
        && (0..v).all(|w| (0..t_count).all(|t| nw[w * t_count + t] == counts.nw(w, t)))
        && (0..d_count).all(|d| (0..t_count).all(|t| nd[d * t_count + t] == counts.nd(d, t)))
}

/// Everything a sweep needs, borrowed from the fitting engine.
pub(crate) struct SweepContext<'a> {
    /// Per-document word ids.
    pub tokens: &'a [Vec<u32>],
    /// Count matrices (shared, atomic).
    pub counts: &'a CountMatrices,
    /// Per-topic priors.
    pub priors: &'a [TopicPrior],
    /// Document–topic prior α.
    pub alpha: f64,
}

impl<'a> SweepContext<'a> {
    /// Total topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.priors.len()
    }
}

/// The sampler's mutable RNG state: the run stream, plus the per-shard
/// streams of [`Backend::ShardedDocs`] (empty for every other backend).
/// Both live in the fitting loop across chunk calls — they are part of
/// the sampler state and are checkpointed.
pub(crate) struct SamplerRngs<'a> {
    /// The run stream (every non-sharded backend draws from it).
    pub main: &'a mut SldaRng,
    /// One stream per shard, in shard order.
    pub shards: &'a mut [SldaRng],
}

/// Reusable sweep state carried by the fitting loop across chunk calls
/// (the fit loop invokes [`run_sweeps`] once per λ-adaptation/checkpoint
/// chunk). Everything here is a pure cache: rebuilding it from the live
/// model state produces bit-identical values, so reuse never perturbs the
/// chain — it only avoids repaying multi-MB copies per chunk.
#[derive(Default)]
pub(crate) struct SweepCache {
    /// The serial kernel's word-major combined prior table (λ adaptation
    /// never touches its contents; `Arc` so shards can share one copy).
    pub combined: Option<std::sync::Arc<kernel::Combined>>,
    /// The sharded backend's chunk state (partition, local count
    /// matrices, the shared combined table).
    pub shard: Option<shard::ShardState>,
    /// The sparse bucket kernel's per-word deviation and non-zero lists
    /// (maintained in lock-step with the counts across chunks).
    pub sparse: Option<sparse::SparseState>,
}

/// Per-sweep telemetry the backend hands to `on_sweep` alongside the
/// iteration index. Pure bookkeeping — tallies and wall-clock spans the
/// sweep produced as a side effect; reading (or ignoring) them never
/// touches the chain. Backends without the corresponding machinery leave
/// the fields `None`.
#[derive(Default)]
pub(crate) struct SweepStats {
    /// Bucket routing tallies from [`Backend::SparseKernel`].
    pub buckets: Option<srclda_obs::SparseBucketCounts>,
    /// Per-shard sweep and merge timings from [`Backend::ShardedDocs`].
    pub shards: Option<srclda_obs::ShardTimings>,
}

/// Run `iterations` full Gibbs sweeps with the chosen backend, mutating the
/// assignment vector `z` and the counts. `on_sweep` is invoked after every
/// sweep with the completed iteration index (1-based) for trace recording,
/// plus that sweep's [`SweepStats`].
///
/// `cache` carries backend sweep state across calls (see [`SweepCache`]);
/// pass a fresh `&mut SweepCache::default()` when no reuse applies.
pub(crate) fn run_sweeps<F: FnMut(usize, &SweepStats)>(
    backend: Backend,
    ctx: &SweepContext<'_>,
    z: &mut [Vec<u32>],
    rngs: SamplerRngs<'_>,
    iterations: usize,
    cache: &mut SweepCache,
    mut on_sweep: F,
) {
    let rng = rngs.main;
    let no_stats = SweepStats::default();
    match backend {
        Backend::Serial => {
            let mut k = kernel::Kernel::new(ctx, cache.combined.take());
            for iter in 1..=iterations {
                k.sweep(ctx, z, rng);
                debug_assert_counts(ctx, z, "serial kernel");
                on_sweep(iter, &no_stats);
            }
            cache.combined = k.into_combined();
        }
        Backend::SparseKernel => {
            let mut k = sparse::SparseKernel::new(ctx, cache.sparse.take());
            for iter in 1..=iterations {
                k.sweep(ctx, z, rng);
                debug_assert_counts(ctx, z, "sparse kernel");
                on_sweep(
                    iter,
                    &SweepStats {
                        buckets: Some(k.take_bucket_counts()),
                        shards: None,
                    },
                );
            }
            cache.sparse = Some(k.into_state());
        }
        Backend::SerialDense => {
            let mut buf = vec![0.0; ctx.num_topics()];
            for iter in 1..=iterations {
                serial::sweep(ctx, z, rng, &mut buf);
                debug_assert_counts(ctx, z, "dense reference");
                on_sweep(iter, &no_stats);
            }
        }
        Backend::SimpleParallel { threads } => {
            parallel::run(
                ctx,
                z,
                rng,
                iterations,
                threads,
                parallel::Algo::Simple,
                &mut |iter| on_sweep(iter, &no_stats),
            );
        }
        Backend::PrefixSums { threads } => {
            parallel::run(
                ctx,
                z,
                rng,
                iterations,
                threads,
                parallel::Algo::PrefixSums,
                &mut |iter| on_sweep(iter, &no_stats),
            );
        }
        Backend::ShardedDocs { shards, threads } => {
            debug_assert_eq!(rngs.shards.len(), shards, "one RNG stream per shard");
            shard::run(
                ctx,
                z,
                rngs.shards,
                iterations,
                threads,
                &mut cache.shard,
                &mut |iter, timings| {
                    on_sweep(
                        iter,
                        &SweepStats {
                            buckets: None,
                            shards: Some(timings),
                        },
                    )
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert_eq!(Backend::SerialDense.threads(), 1);
        assert_eq!(Backend::SparseKernel.threads(), 1);
        assert_eq!(Backend::PrefixSums { threads: 4 }.threads(), 4);
        assert_eq!(Backend::SimpleParallel { threads: 6 }.threads(), 6);
        assert_eq!(
            Backend::ShardedDocs {
                shards: 4,
                threads: 2
            }
            .threads(),
            2
        );
    }

    #[test]
    fn shard_counts() {
        assert_eq!(Backend::Serial.shards(), 1);
        assert!(!Backend::Serial.is_sharded());
        assert_eq!(Backend::SparseKernel.shards(), 1);
        assert!(!Backend::SparseKernel.is_sharded());
        let sharded = Backend::ShardedDocs {
            shards: 8,
            threads: 2,
        };
        assert_eq!(sharded.shards(), 8);
        assert!(sharded.is_sharded());
    }

    #[test]
    fn zero_threads_invalid() {
        assert!(Backend::PrefixSums { threads: 0 }.validate().is_err());
        assert!(Backend::SimpleParallel { threads: 0 }.validate().is_err());
        assert!(Backend::Serial.validate().is_ok());
        assert!(Backend::ShardedDocs {
            shards: 0,
            threads: 1
        }
        .validate()
        .is_err());
        assert!(Backend::ShardedDocs {
            shards: 2,
            threads: 0
        }
        .validate()
        .is_err());
        assert!(Backend::ShardedDocs {
            shards: 2,
            threads: 2
        }
        .validate()
        .is_ok());
    }
}
