//! Sampler backends, decomposed along two orthogonal axes: the sweep
//! **kernel** ([`KernelKind`] — dense reference, optimized flat tables,
//! or sub-linear SparseLDA buckets) and the **execution strategy**
//! (single-threaded, document-sharded, or the paper's two exact
//! per-token parallel algorithms). See the kernel × execution matrix on
//! [`Backend`].
//!
//! All backends draw **one uniform variate per token** from their RNG
//! stream. The dense-family kernels realize the same categorical draw, so
//! they walk identical chains from identical seeds; the sparse kernel
//! routes the uniform through bucket thresholds and is held to a
//! distribution-level contract instead. The kernel ([`kernel`]) and the
//! dense reference ([`serial`]) are bit-identical by construction (flat
//! tables and cached reciprocals reproduce `TopicPrior::word_weight`
//! exactly).

pub mod adapt;
pub mod kernel;
pub mod parallel;
pub mod serial;
pub mod shard;
pub mod sparse;

use crate::counts::CountMatrices;
use crate::error::CoreError;
use crate::prior::TopicPrior;
use srclda_math::SldaRng;

/// Which **sweep kernel** computes the per-token topic distribution and
/// draws from it — the *arithmetic* axis of the backend matrix, orthogonal
/// to how work is scheduled (single-threaded vs document shards).
///
/// `Dense` and `Flat` realize the identical categorical draw and walk
/// bit-identical chains from one seed (the flat tables reproduce
/// `TopicPrior::word_weight` exactly); `Sparse` routes the same per-token
/// uniform through SparseLDA bucket thresholds, so it walks its own chain
/// and is held to a distribution-level contract instead (see [`sparse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// The straightforward per-(token, topic) `word_weight` loop
    /// ([`serial`]) — the O(T) reference arithmetic.
    Dense,
    /// The optimized flat-table kernel ([`kernel`]): struct-of-arrays
    /// sweep tables, cached reciprocals, word-major combined layout.
    /// Bit-identical to `Dense`, several times faster. The default — every
    /// pre-existing config and checkpoint maps here.
    #[default]
    Flat,
    /// The sub-linear SparseLDA bucket kernel ([`sparse`]):
    /// O(k_d + k_w) per token instead of O(T). Distribution-level
    /// equivalent to `Dense`/`Flat`, not bit-equal.
    Sparse,
}

impl KernelKind {
    /// Whether this kernel routes draws through bucket thresholds (walks
    /// its own chain) rather than the dense prefix-sum arithmetic. The
    /// checkpoint layer records this so resume can never silently switch
    /// between the two chain families.
    pub fn is_sparse(&self) -> bool {
        matches!(self, KernelKind::Sparse)
    }
}

/// Which sampling algorithm executes the per-token topic draw.
///
/// ## Kernel × execution matrix
///
/// Backends decompose along two orthogonal axes: the sweep **kernel**
/// ([`KernelKind`] — how one token's topic distribution is computed) and
/// the **execution strategy** (how tokens are scheduled onto threads).
/// Every cell of the matrix that exists is reachable:
///
/// | kernel ↓ \ execution → | single-thread      | document shards (`S`, AD-LDA)       | per-token parallel (Algorithms 2/3)  |
/// |------------------------|--------------------|-------------------------------------|--------------------------------------|
/// | [`KernelKind::Flat`]   | [`Backend::Serial`]| `ShardedDocs { kernel: Flat, .. }`  | —                                    |
/// | [`KernelKind::Dense`]  | [`Backend::SerialDense`] | `ShardedDocs { kernel: Dense, .. }` | [`Backend::PrefixSums`], [`Backend::SimpleParallel`] |
/// | [`KernelKind::Sparse`] | [`Backend::SparseKernel`] | `ShardedDocs { kernel: Sparse, .. }` | —                             |
///
/// Equivalence classes, from one seed:
///
/// * `Serial` ≡ `SerialDense` ≡ `PrefixSums` ≡ `SimpleParallel` —
///   **bit-identical** chains (the flat tables and the parallel scans
///   reorganize the same arithmetic without changing the sampled draw).
///   `PrefixSums`/`SimpleParallel` are the paper's per-token algorithms,
///   kept for fidelity; they cap out at T and are superseded for corpus
///   scale by `ShardedDocs` — prefer the shard row for new configs.
/// * `ShardedDocs { kernel: k, shards: 1, .. }` is **bit-identical** to
///   kernel `k`'s single-thread backend, for every `k`; at `S > 1` the
///   chain is the AD-LDA approximation, deterministic in
///   `(seed, S, kernel)` with `threads` pure scheduling.
/// * `SparseKernel` (and the `Sparse` shard row) is
///   **distribution-level** equivalent to the dense family: exact
///   bucket-mass ≡ dense-mass property tests plus held-out perplexity
///   parity (`tests/kernel_equivalence.rs`, `tests/shard_equivalence.rs`),
///   never bit-equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded sampling (Algorithm 1) through the optimized hot
    /// path: flat prior tables, cached reciprocals, sparse document-topic
    /// bookkeeping, non-atomic counts (see [`kernel`]).
    Serial,
    /// Single-threaded sampling through the dense reference sweep — the
    /// straightforward per-(token, topic) `word_weight` loop. Walks the
    /// same chain as [`Backend::Serial`] bit for bit; kept as the
    /// equivalence baseline and the "before" side of the
    /// `sweep_throughput` benchmark.
    SerialDense,
    /// Algorithm 2: Blelloch prefix-sums scan over the probability vector,
    /// parallelized over `threads` workers with per-level barriers.
    PrefixSums {
        /// Number of worker threads `P`.
        threads: usize,
    },
    /// Algorithm 3: per-thread block sums, one barrier, parallel fix-up.
    SimpleParallel {
        /// Number of worker threads `P`.
        threads: usize,
    },
    /// Single-threaded **sub-linear** sampling through the SparseLDA-style
    /// bucket decomposition (see [`sparse`]): the per-token weight splits
    /// into a cached smoothing bucket, a cached doc bucket, and a
    /// word-sparse bucket, so each token costs O(k_d + k_w) instead of
    /// O(T). Wins when T is large and documents/words touch few topics.
    ///
    /// The chain is fully deterministic in the seed and chunk-boundary
    /// invariant, but **not** bit-equal to [`Backend::Serial`] — bucket
    /// routing consumes the per-token uniform differently. Equivalence is
    /// distribution-level: exact bucket-mass ≡ dense-mass (property-tested)
    /// and held-out perplexity parity (`tests/kernel_equivalence.rs`).
    SparseKernel,
    /// Document-sharded approximate collapsed Gibbs (AD-LDA style, see
    /// [`shard`]): documents are statically partitioned into `shards`
    /// shards; each shard sweeps against a sweep-start snapshot of the
    /// word/topic counts with its own RNG stream, and shard deltas merge
    /// into the global counts at every sweep boundary, in shard order.
    ///
    /// The chain is a pure function of `(seed, shards, kernel)` —
    /// `threads` only schedules shard work and never changes a single bit
    /// of the result — and `shards: 1` walks the exact chain of the
    /// kernel's single-thread backend ([`Backend::Serial`] for `Flat`,
    /// [`Backend::SparseKernel`] for `Sparse`, [`Backend::SerialDense`]
    /// for `Dense`).
    ShardedDocs {
        /// Sweep kernel each shard runs over its local counts. Defaults
        /// to [`KernelKind::Flat`] ([`Default`]), which reproduces the
        /// pre-kernel-axis sharded chain bit for bit; pick
        /// [`KernelKind::Sparse`] at large T so shards keep the
        /// sub-linear O(k_d + k_w) per-token cost.
        kernel: KernelKind,
        /// Fixed shard count `S` (determinism granularity).
        shards: usize,
        /// Worker threads executing shard sweeps (clamped to `S`).
        threads: usize,
    },
}

impl Backend {
    /// Number of worker threads this backend uses.
    pub fn threads(&self) -> usize {
        match self {
            Backend::Serial | Backend::SerialDense | Backend::SparseKernel => 1,
            Backend::PrefixSums { threads }
            | Backend::SimpleParallel { threads }
            | Backend::ShardedDocs { threads, .. } => *threads,
        }
    }

    /// Number of document shards (1 for every non-sharded backend).
    pub fn shards(&self) -> usize {
        match self {
            Backend::ShardedDocs { shards, .. } => *shards,
            _ => 1,
        }
    }

    /// True iff this is the document-sharded backend (the only backend
    /// whose sampler state includes per-shard RNG streams).
    pub fn is_sharded(&self) -> bool {
        matches!(self, Backend::ShardedDocs { .. })
    }

    /// The sweep kernel this backend runs — the backend's position on the
    /// arithmetic axis of the kernel × execution matrix. The serial
    /// backends are aliases into the matrix (`Serial` → `Flat`,
    /// `SerialDense` → `Dense`, `SparseKernel` → `Sparse`); the paper's
    /// per-token parallel algorithms scan the dense weight vector.
    pub fn kernel(&self) -> KernelKind {
        match self {
            Backend::Serial => KernelKind::Flat,
            Backend::SerialDense | Backend::PrefixSums { .. } | Backend::SimpleParallel { .. } => {
                KernelKind::Dense
            }
            Backend::SparseKernel => KernelKind::Sparse,
            Backend::ShardedDocs { kernel, .. } => *kernel,
        }
    }

    /// Check the configuration is runnable.
    pub(crate) fn validate(&self) -> crate::Result<()> {
        if self.threads() == 0 {
            return Err(CoreError::InvalidConfig(
                "parallel backends need at least one thread".into(),
            ));
        }
        if let Backend::ShardedDocs { shards: 0, .. } = self {
            return Err(CoreError::InvalidConfig(
                "sharded backend needs at least one shard".into(),
            ));
        }
        Ok(())
    }
}

/// Narrow an in-memory index (topic, word, doc position) to its `u32`
/// wire/storage width. Topic counts, vocabulary sizes, and document
/// lengths are all `u32`-sized by construction, so the cast cannot
/// truncate; debug builds verify that.
#[inline]
pub(crate) fn idx_u32(x: usize) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "index {x} exceeds u32::MAX");
    x as u32 // lint:allow(narrowing-cast): debug-asserted above; callers pass indices bounded by u32-sized T/V/doc-len
}

/// Debug-build cross-check of the sampler's core bookkeeping invariant:
/// the count matrices `nd`/`nw`/`nt` must be exactly the histograms of
/// the current assignment vector `z`. Every backend calls this at sweep
/// boundaries; a drifted counter here means a broken
/// increment/decrement pairing or a bad shard-delta merge, which would
/// otherwise surface only as silently wrong posteriors.
#[inline]
pub(crate) fn debug_assert_counts(ctx: &SweepContext<'_>, z: &[Vec<u32>], backend: &str) {
    debug_assert!(
        counts_match_assignments(ctx, z),
        "{backend}: count matrices diverged from the z histogram at a sweep boundary"
    );
}

/// Recompute `nd`/`nw`/`nt` from `(tokens, z)` and compare against the
/// live matrices. O(N + (D+V+1)·T); only debug builds evaluate it.
fn counts_match_assignments(ctx: &SweepContext<'_>, z: &[Vec<u32>]) -> bool {
    let counts = ctx.counts;
    let (v, t_count, d_count) = (counts.vocab_size(), counts.num_topics(), counts.num_docs());
    if z.len() != d_count {
        return false;
    }
    let mut nw = vec![0u32; v * t_count];
    let mut nd = vec![0u32; d_count * t_count];
    let mut nt = vec![0u32; t_count];
    for (d, (doc, zs)) in ctx.tokens.iter().zip(z).enumerate() {
        if doc.len() != zs.len() {
            return false;
        }
        for (&w, &t) in doc.iter().zip(zs) {
            let (w, t) = (w as usize, t as usize);
            if w >= v || t >= t_count {
                return false;
            }
            nw[w * t_count + t] += 1;
            nd[d * t_count + t] += 1;
            nt[t] += 1;
        }
    }
    (0..t_count).all(|t| nt[t] == counts.nt(t))
        && (0..v).all(|w| (0..t_count).all(|t| nw[w * t_count + t] == counts.nw(w, t)))
        && (0..d_count).all(|d| (0..t_count).all(|t| nd[d * t_count + t] == counts.nd(d, t)))
}

/// Everything a sweep needs, borrowed from the fitting engine.
pub(crate) struct SweepContext<'a> {
    /// Per-document word ids.
    pub tokens: &'a [Vec<u32>],
    /// Count matrices (shared, atomic).
    pub counts: &'a CountMatrices,
    /// Per-topic priors.
    pub priors: &'a [TopicPrior],
    /// Document–topic prior α.
    pub alpha: f64,
}

impl<'a> SweepContext<'a> {
    /// Total topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.priors.len()
    }
}

/// The sampler's mutable RNG state: the run stream, plus the per-shard
/// streams of [`Backend::ShardedDocs`] (empty for every other backend).
/// Both live in the fitting loop across chunk calls — they are part of
/// the sampler state and are checkpointed.
pub(crate) struct SamplerRngs<'a> {
    /// The run stream (every non-sharded backend draws from it).
    pub main: &'a mut SldaRng,
    /// One stream per shard, in shard order.
    pub shards: &'a mut [SldaRng],
}

/// Reusable sweep state carried by the fitting loop across chunk calls
/// (the fit loop invokes [`run_sweeps`] once per λ-adaptation/checkpoint
/// chunk). Everything here is a pure cache: rebuilding it from the live
/// model state produces bit-identical values, so reuse never perturbs the
/// chain — it only avoids repaying multi-MB copies per chunk.
#[derive(Default)]
pub(crate) struct SweepCache {
    /// The serial kernel's word-major combined prior table (λ adaptation
    /// never touches its contents; `Arc` so shards can share one copy).
    pub combined: Option<std::sync::Arc<kernel::Combined>>,
    /// The sharded backend's chunk state (partition, local count
    /// matrices, the shared combined table).
    pub shard: Option<shard::ShardState>,
    /// The sparse bucket kernel's per-word deviation and non-zero lists
    /// (maintained in lock-step with the counts across chunks).
    pub sparse: Option<sparse::SparseState>,
}

/// Per-sweep telemetry the backend hands to `on_sweep` alongside the
/// iteration index. Pure bookkeeping — tallies and wall-clock spans the
/// sweep produced as a side effect; reading (or ignoring) them never
/// touches the chain. Backends without the corresponding machinery leave
/// the fields `None`.
#[derive(Default)]
pub(crate) struct SweepStats {
    /// Bucket routing tallies from [`Backend::SparseKernel`].
    pub buckets: Option<srclda_obs::SparseBucketCounts>,
    /// Per-shard sweep and merge timings from [`Backend::ShardedDocs`].
    pub shards: Option<srclda_obs::ShardTimings>,
}

/// Run `iterations` full Gibbs sweeps with the chosen backend, mutating the
/// assignment vector `z` and the counts. `on_sweep` is invoked after every
/// sweep with the completed iteration index (1-based) for trace recording,
/// plus that sweep's [`SweepStats`].
///
/// `cache` carries backend sweep state across calls (see [`SweepCache`]);
/// pass a fresh `&mut SweepCache::default()` when no reuse applies.
pub(crate) fn run_sweeps<F: FnMut(usize, &SweepStats)>(
    backend: Backend,
    ctx: &SweepContext<'_>,
    z: &mut [Vec<u32>],
    rngs: SamplerRngs<'_>,
    iterations: usize,
    cache: &mut SweepCache,
    mut on_sweep: F,
) {
    let rng = rngs.main;
    let no_stats = SweepStats::default();
    match backend {
        Backend::Serial => {
            let mut k = kernel::Kernel::new(ctx, cache.combined.take());
            for iter in 1..=iterations {
                k.sweep(ctx, z, rng);
                debug_assert_counts(ctx, z, "serial kernel");
                on_sweep(iter, &no_stats);
            }
            cache.combined = k.into_combined();
        }
        Backend::SparseKernel => {
            let mut k = sparse::SparseKernel::new(ctx, cache.sparse.take());
            for iter in 1..=iterations {
                k.sweep(ctx, z, rng);
                debug_assert_counts(ctx, z, "sparse kernel");
                on_sweep(
                    iter,
                    &SweepStats {
                        buckets: Some(k.take_bucket_counts()),
                        shards: None,
                    },
                );
            }
            cache.sparse = Some(k.into_state());
        }
        Backend::SerialDense => {
            let mut buf = vec![0.0; ctx.num_topics()];
            for iter in 1..=iterations {
                serial::sweep(ctx, z, rng, &mut buf);
                debug_assert_counts(ctx, z, "dense reference");
                on_sweep(iter, &no_stats);
            }
        }
        Backend::SimpleParallel { threads } => {
            parallel::run(
                ctx,
                z,
                rng,
                iterations,
                threads,
                parallel::Algo::Simple,
                &mut |iter| on_sweep(iter, &no_stats),
            );
        }
        Backend::PrefixSums { threads } => {
            parallel::run(
                ctx,
                z,
                rng,
                iterations,
                threads,
                parallel::Algo::PrefixSums,
                &mut |iter| on_sweep(iter, &no_stats),
            );
        }
        Backend::ShardedDocs {
            kernel,
            shards,
            threads,
        } => {
            debug_assert_eq!(rngs.shards.len(), shards, "one RNG stream per shard");
            shard::run(
                ctx,
                z,
                rngs.shards,
                &shard::RunPlan {
                    iterations,
                    threads,
                    kernel,
                },
                &mut cache.shard,
                &mut |iter, timings| {
                    on_sweep(
                        iter,
                        &SweepStats {
                            buckets: None,
                            shards: Some(timings),
                        },
                    )
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert_eq!(Backend::SerialDense.threads(), 1);
        assert_eq!(Backend::SparseKernel.threads(), 1);
        assert_eq!(Backend::PrefixSums { threads: 4 }.threads(), 4);
        assert_eq!(Backend::SimpleParallel { threads: 6 }.threads(), 6);
        assert_eq!(
            Backend::ShardedDocs {
                kernel: KernelKind::Flat,
                shards: 4,
                threads: 2
            }
            .threads(),
            2
        );
    }

    #[test]
    fn shard_counts() {
        assert_eq!(Backend::Serial.shards(), 1);
        assert!(!Backend::Serial.is_sharded());
        assert_eq!(Backend::SparseKernel.shards(), 1);
        assert!(!Backend::SparseKernel.is_sharded());
        let sharded = Backend::ShardedDocs {
            kernel: KernelKind::Flat,
            shards: 8,
            threads: 2,
        };
        assert_eq!(sharded.shards(), 8);
        assert!(sharded.is_sharded());
    }

    #[test]
    fn kernel_axis_aliases() {
        // The serial backends are aliases into the kernel × execution
        // matrix; the default kernel is Flat so pre-refactor configs keep
        // their chains.
        assert_eq!(KernelKind::default(), KernelKind::Flat);
        assert_eq!(Backend::Serial.kernel(), KernelKind::Flat);
        assert_eq!(Backend::SerialDense.kernel(), KernelKind::Dense);
        assert_eq!(Backend::SparseKernel.kernel(), KernelKind::Sparse);
        assert_eq!(
            Backend::PrefixSums { threads: 2 }.kernel(),
            KernelKind::Dense
        );
        assert_eq!(
            Backend::SimpleParallel { threads: 2 }.kernel(),
            KernelKind::Dense
        );
        let sharded_sparse = Backend::ShardedDocs {
            kernel: KernelKind::Sparse,
            shards: 4,
            threads: 2,
        };
        assert_eq!(sharded_sparse.kernel(), KernelKind::Sparse);
        assert!(sharded_sparse.kernel().is_sparse());
        assert!(!Backend::Serial.kernel().is_sparse());
    }

    #[test]
    fn zero_threads_invalid() {
        assert!(Backend::PrefixSums { threads: 0 }.validate().is_err());
        assert!(Backend::SimpleParallel { threads: 0 }.validate().is_err());
        assert!(Backend::Serial.validate().is_ok());
        assert!(Backend::ShardedDocs {
            kernel: KernelKind::Flat,
            shards: 0,
            threads: 1
        }
        .validate()
        .is_err());
        assert!(Backend::ShardedDocs {
            kernel: KernelKind::Sparse,
            shards: 2,
            threads: 0
        }
        .validate()
        .is_err());
        assert!(Backend::ShardedDocs {
            kernel: KernelKind::Sparse,
            shards: 2,
            threads: 2
        }
        .validate()
        .is_ok());
    }
}
