//! Plain-old-data mirrors of model internals for serialization.
//!
//! The live types ([`TopicPrior`], its λ-integration table) carry derived
//! state (precomputed sums, membership masks) and privacy that make them
//! poor wire formats. This module defines value-only mirrors — every field
//! public, nothing derived — plus lossless conversions in both directions.
//! Serializers (e.g. the `srclda_serve` artifact codec) encode the raw
//! types; `from_raw` revalidates on the way back in, so a decoded model is
//! exactly as trustworthy as a freshly built one.
//!
//! Round-trip guarantee: `from_raw(to_raw(p), v)` reconstructs a prior whose
//! [`TopicPrior::word_weight`] is bit-identical to the original's for every
//! `(w, nw, nt)` — the f64 payloads are copied, never recomputed.

use crate::error::CoreError;
use crate::prior::{IntegrationTable, TopicPrior};

/// Value-only mirror of the λ-integration table's storage layout.
#[derive(Debug, Clone, PartialEq)]
pub enum RawIntegrationLayout {
    /// Dense per-word table: `values[w*A + a]`, length `V·A`.
    Dense {
        /// The `δ^{g(λₐ)}` grid, row-major by word.
        values: Vec<f64>,
    },
    /// Sparse table: only support words stored.
    Sparse {
        /// Sorted word ids with non-zero source counts.
        support: Vec<u32>,
        /// The `δ^{g(λₐ)}` grid, row-major by support index.
        values: Vec<f64>,
        /// Shared row for zero-count words (length `A`).
        zero_values: Vec<f64>,
    },
}

/// Value-only mirror of [`IntegrationTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct RawIntegrationTable {
    /// Current quadrature weights `wₐ` (length `A`).
    pub weights: Vec<f64>,
    /// Log prior quadrature weights (length `A`).
    pub prior_log_weights: Vec<f64>,
    /// `Σ_w δ_w^{g(λₐ)}` per level (length `A`).
    pub sums: Vec<f64>,
    /// Storage layout.
    pub layout: RawIntegrationLayout,
}

/// Value-only mirror of [`TopicPrior`].
#[derive(Debug, Clone, PartialEq)]
pub enum RawPrior {
    /// Symmetric Dirichlet `Dir(β)`.
    Symmetric {
        /// The concentration β.
        beta: f64,
    },
    /// Fixed asymmetric Dirichlet `Dir(δ)`.
    Fixed {
        /// Per-word hyperparameters (length `V`).
        delta: Vec<f64>,
    },
    /// λ-integrated source prior.
    Integrated(RawIntegrationTable),
    /// Frozen word distribution (EDA).
    Frozen {
        /// The fixed distribution (length `V`).
        phi: Vec<f64>,
    },
    /// Concept word set (CTM).
    ConceptSet {
        /// Word ids in the concept bag.
        support: Vec<u32>,
        /// The concentration β.
        beta: f64,
    },
}

impl RawPrior {
    /// Short kind name (diagnostics; matches [`TopicPrior::kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            RawPrior::Symmetric { .. } => "symmetric",
            RawPrior::Fixed { .. } => "fixed",
            RawPrior::Integrated(_) => "integrated",
            RawPrior::Frozen { .. } => "frozen",
            RawPrior::ConceptSet { .. } => "concept-set",
        }
    }
}

impl TopicPrior {
    /// Convert to the serializable mirror. Derived fields (sums, masks) are
    /// dropped where recomputable and kept where they are bit-exact state.
    pub fn to_raw(&self) -> RawPrior {
        match self {
            TopicPrior::Symmetric { beta, .. } => RawPrior::Symmetric { beta: *beta },
            TopicPrior::Fixed { delta, .. } => RawPrior::Fixed {
                delta: delta.clone(),
            },
            TopicPrior::Integrated(table) => RawPrior::Integrated(table.to_raw()),
            TopicPrior::Frozen { phi } => RawPrior::Frozen { phi: phi.clone() },
            TopicPrior::ConceptSet { in_set, beta, .. } => RawPrior::ConceptSet {
                support: in_set
                    .iter()
                    .enumerate()
                    .filter_map(|(w, &m)| m.then_some(w as u32))
                    .collect(),
                beta: *beta,
            },
        }
    }

    /// Rebuild from the mirror against a `vocab_size`-word vocabulary.
    ///
    /// # Errors
    /// Fails if any vector length, word id, or parameter is inconsistent
    /// with `vocab_size` (a corrupt or mismatched artifact).
    pub fn from_raw(raw: RawPrior, vocab_size: usize) -> crate::Result<Self> {
        let check_len = |len: usize, what: &str| {
            if len == vocab_size {
                Ok(())
            } else {
                Err(CoreError::InvalidConfig(format!(
                    "{what} has {len} entries for a {vocab_size}-word vocabulary"
                )))
            }
        };
        match raw {
            RawPrior::Symmetric { beta } => TopicPrior::symmetric(beta, vocab_size),
            RawPrior::Fixed { delta } => {
                check_len(delta.len(), "fixed prior delta")?;
                let sum: f64 = delta.iter().sum();
                if !(sum > 0.0 && sum.is_finite()) {
                    return Err(CoreError::InvalidConfig(format!(
                        "fixed prior delta sums to {sum}"
                    )));
                }
                Ok(TopicPrior::Fixed { delta, sum })
            }
            RawPrior::Integrated(table) => Ok(TopicPrior::Integrated(Box::new(
                IntegrationTable::from_raw(table, vocab_size)?,
            ))),
            RawPrior::Frozen { phi } => {
                check_len(phi.len(), "frozen prior phi")?;
                if !phi.iter().all(|&p| p.is_finite() && p >= 0.0) {
                    return Err(CoreError::InvalidConfig(
                        "frozen prior phi has negative or non-finite entries".into(),
                    ));
                }
                Ok(TopicPrior::Frozen { phi })
            }
            RawPrior::ConceptSet { support, beta } => {
                if let Some(&w) = support.iter().find(|&&w| w as usize >= vocab_size) {
                    return Err(CoreError::InvalidConfig(format!(
                        "concept-set word id {w} outside vocabulary of size {vocab_size}"
                    )));
                }
                TopicPrior::concept_set(&support, beta, vocab_size)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_knowledge::{SmoothingFunction, SourceTopic};
    use srclda_math::DiscretizedGaussian;

    fn weight_grid(p: &TopicPrior, v: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for w in 0..v {
            for &(nw, nt) in &[(0.0, 0.0), (2.0, 7.0), (15.0, 40.0)] {
                out.push(p.word_weight(w, nw, nt));
            }
        }
        out
    }

    fn assert_round_trip(p: &TopicPrior, v: usize) {
        let raw = p.to_raw();
        let back = TopicPrior::from_raw(raw.clone(), v).unwrap();
        assert_eq!(weight_grid(p, v), weight_grid(&back, v), "{}", p.kind());
        assert_eq!(raw, back.to_raw(), "second trip must be stable");
        assert_eq!(p.kind(), back.kind());
    }

    #[test]
    fn symmetric_round_trips() {
        assert_round_trip(&TopicPrior::symmetric(0.37, 6).unwrap(), 6);
    }

    #[test]
    fn fixed_round_trips() {
        let t = SourceTopic::new("T", vec![5.0, 0.0, 2.5, 1.0]);
        assert_round_trip(&TopicPrior::fixed_from_source(&t, 0.01), 4);
    }

    #[test]
    fn frozen_round_trips() {
        let t = SourceTopic::new("T", vec![5.0, 0.0, 2.5, 1.0]);
        assert_round_trip(&TopicPrior::frozen_from_source(&t, 0.01), 4);
    }

    #[test]
    fn concept_set_round_trips() {
        assert_round_trip(&TopicPrior::concept_set(&[0, 3], 0.5, 5).unwrap(), 5);
    }

    #[test]
    fn integrated_dense_round_trips() {
        let t = SourceTopic::new("T", vec![6.0, 3.0, 0.0, 1.0]);
        let q = DiscretizedGaussian::unit_interval(0.7, 0.3, 5).unwrap();
        let g = SmoothingFunction::identity();
        let mut p = TopicPrior::integrated(&t, 0.01, &g, &q);
        // Adapt once so the round trip must preserve *posterior* weights,
        // not just the prior discretization.
        p.adapt_lambda(vec![(0usize, 12u32), (1, 4)], 16);
        assert_round_trip(&p, 4);
    }

    #[test]
    fn integrated_sparse_round_trips() {
        let v = 9000;
        let mut counts = vec![0.0; v];
        counts[5] = 4.0;
        counts[7777] = 9.0;
        let t = SourceTopic::new("T", counts);
        let q = DiscretizedGaussian::unit_interval(0.7, 0.3, 4).unwrap();
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&t, 0.01, &g, &q);
        let raw = p.to_raw();
        assert!(matches!(
            &raw,
            RawPrior::Integrated(RawIntegrationTable {
                layout: RawIntegrationLayout::Sparse { .. },
                ..
            })
        ));
        let back = TopicPrior::from_raw(raw, v).unwrap();
        for &w in &[5usize, 6, 7777, 0] {
            assert_eq!(p.word_weight(w, 1.0, 5.0), back.word_weight(w, 1.0, 5.0));
            assert_eq!(p.effective_delta(w), back.effective_delta(w));
        }
    }

    #[test]
    fn adaptation_still_works_after_round_trip() {
        let t = SourceTopic::new("T", vec![40.0, 12.0, 4.0, 1.0]);
        let q = DiscretizedGaussian::unit_interval(0.5, 10.0, 6).unwrap();
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&t, 0.01, &g, &q);
        let mut a = p.clone();
        let mut b = TopicPrior::from_raw(p.to_raw(), 4).unwrap();
        let counts = vec![(0usize, 70u32), (1, 21), (2, 7), (3, 2)];
        a.adapt_lambda(counts.clone(), 100);
        b.adapt_lambda(counts, 100);
        for w in 0..4 {
            assert_eq!(a.word_weight(w, 1.0, 5.0), b.word_weight(w, 1.0, 5.0));
        }
    }

    #[test]
    fn rejects_inconsistent_mirrors() {
        // Wrong delta length.
        assert!(TopicPrior::from_raw(
            RawPrior::Fixed {
                delta: vec![1.0, 2.0]
            },
            3
        )
        .is_err());
        // Zero-mass delta.
        assert!(TopicPrior::from_raw(
            RawPrior::Fixed {
                delta: vec![0.0, 0.0]
            },
            2
        )
        .is_err());
        // Out-of-range concept word.
        assert!(TopicPrior::from_raw(
            RawPrior::ConceptSet {
                support: vec![9],
                beta: 0.5
            },
            3
        )
        .is_err());
        // Bad beta.
        assert!(TopicPrior::from_raw(RawPrior::Symmetric { beta: -1.0 }, 3).is_err());
        // Non-finite frozen phi.
        assert!(TopicPrior::from_raw(
            RawPrior::Frozen {
                phi: vec![0.5, f64::NAN]
            },
            2
        )
        .is_err());
        // Integrated: mismatched level counts.
        let bad = RawIntegrationTable {
            weights: vec![0.5, 0.5],
            prior_log_weights: vec![0.0],
            sums: vec![1.0, 1.0],
            layout: RawIntegrationLayout::Dense {
                values: vec![1.0; 8],
            },
        };
        assert!(TopicPrior::from_raw(RawPrior::Integrated(bad), 4).is_err());
        // Integrated sparse: unsorted support breaks binary search.
        let bad = RawIntegrationTable {
            weights: vec![1.0],
            prior_log_weights: vec![0.0],
            sums: vec![1.0],
            layout: RawIntegrationLayout::Sparse {
                support: vec![3, 1],
                values: vec![1.0, 1.0],
                zero_values: vec![0.1],
            },
        };
        assert!(TopicPrior::from_raw(RawPrior::Integrated(bad), 4).is_err());
    }

    #[test]
    fn kinds_match() {
        let t = SourceTopic::new("T", vec![1.0, 2.0]);
        for p in [
            TopicPrior::symmetric(0.1, 2).unwrap(),
            TopicPrior::fixed_from_source(&t, 0.01),
            TopicPrior::frozen_from_source(&t, 0.01),
            TopicPrior::concept_set(&[0], 0.1, 2).unwrap(),
        ] {
            assert_eq!(p.kind(), p.to_raw().kind());
        }
    }
}
