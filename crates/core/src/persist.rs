//! Plain-old-data mirrors of model internals for serialization.
//!
//! The live types ([`TopicPrior`], its λ-integration table) carry derived
//! state (precomputed sums, membership masks) and privacy that make them
//! poor wire formats. This module defines value-only mirrors — every field
//! public, nothing derived — plus lossless conversions in both directions.
//! Serializers (e.g. the `srclda_serve` artifact codec) encode the raw
//! types; `from_raw` revalidates on the way back in, so a decoded model is
//! exactly as trustworthy as a freshly built one.
//!
//! Round-trip guarantee: `from_raw(to_raw(p), v)` reconstructs a prior whose
//! [`TopicPrior::word_weight`] is bit-identical to the original's for every
//! `(w, nw, nt)` — the f64 payloads are copied, never recomputed.
//!
//! [`TrainCheckpoint`] extends the same philosophy to *whole training
//! runs*: everything a collapsed Gibbs chain needs to continue from a
//! sweep boundary — assignments, counts, RNG streams, shard layout, the
//! (possibly λ-adapted) priors — as plain values. Capture and resume go
//! through [`crate::GibbsModel::fit_resumable`]; the byte encoding lives
//! with the artifact codec in `srclda_serve` (the checkpoint section of a
//! format-v2 `.slda` file).

use crate::error::CoreError;
use crate::prior::{IntegrationTable, TopicPrior};
use crate::sampler::KernelKind;

/// Bit position of the kernel tag inside [`TrainCheckpoint::shards`].
///
/// The low 56 bits carry the shard count; the high byte records which
/// sweep kernel produced the chain (0 = flat, 1 = sparse, 2 = dense).
/// Tag 0 was chosen for the flat kernel so every checkpoint written
/// before kernels were recorded — whose high byte is naturally zero —
/// decodes as the flat kernel it was in fact trained with, and so that
/// re-encoding such a checkpoint reproduces its original bytes and
/// digest.
const KERNEL_TAG_SHIFT: u32 = 56;

/// Mask selecting the shard-count bits of [`TrainCheckpoint::shards`].
const SHARD_COUNT_MASK: u64 = (1 << KERNEL_TAG_SHIFT) - 1;

/// Encode a kernel kind + shard count into the packed `shards` word.
pub(crate) fn pack_shards(kernel: KernelKind, shards: u64) -> u64 {
    debug_assert_eq!(shards & !SHARD_COUNT_MASK, 0, "shard count overflow");
    let tag: u64 = match kernel {
        KernelKind::Flat => 0,
        KernelKind::Sparse => 1,
        KernelKind::Dense => 2,
    };
    (tag << KERNEL_TAG_SHIFT) | shards
}

/// Value-only mirror of the λ-integration table's storage layout.
#[derive(Debug, Clone, PartialEq)]
pub enum RawIntegrationLayout {
    /// Dense per-word table: `values[w*A + a]`, length `V·A`.
    Dense {
        /// The `δ^{g(λₐ)}` grid, row-major by word.
        values: Vec<f64>,
    },
    /// Sparse table: only support words stored.
    Sparse {
        /// Sorted word ids with non-zero source counts.
        support: Vec<u32>,
        /// The `δ^{g(λₐ)}` grid, row-major by support index.
        values: Vec<f64>,
        /// Shared row for zero-count words (length `A`).
        zero_values: Vec<f64>,
    },
}

/// Value-only mirror of [`IntegrationTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct RawIntegrationTable {
    /// Current quadrature weights `wₐ` (length `A`).
    pub weights: Vec<f64>,
    /// Log prior quadrature weights (length `A`).
    pub prior_log_weights: Vec<f64>,
    /// `Σ_w δ_w^{g(λₐ)}` per level (length `A`).
    pub sums: Vec<f64>,
    /// Storage layout.
    pub layout: RawIntegrationLayout,
}

/// Value-only mirror of [`TopicPrior`].
#[derive(Debug, Clone, PartialEq)]
pub enum RawPrior {
    /// Symmetric Dirichlet `Dir(β)`.
    Symmetric {
        /// The concentration β.
        beta: f64,
    },
    /// Fixed asymmetric Dirichlet `Dir(δ)`.
    Fixed {
        /// Per-word hyperparameters (length `V`).
        delta: Vec<f64>,
    },
    /// λ-integrated source prior.
    Integrated(RawIntegrationTable),
    /// Frozen word distribution (EDA).
    Frozen {
        /// The fixed distribution (length `V`).
        phi: Vec<f64>,
    },
    /// Concept word set (CTM).
    ConceptSet {
        /// Word ids in the concept bag.
        support: Vec<u32>,
        /// The concentration β.
        beta: f64,
    },
}

impl RawPrior {
    /// Short kind name (diagnostics; matches [`TopicPrior::kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            RawPrior::Symmetric { .. } => "symmetric",
            RawPrior::Fixed { .. } => "fixed",
            RawPrior::Integrated(_) => "integrated",
            RawPrior::Frozen { .. } => "frozen",
            RawPrior::ConceptSet { .. } => "concept-set",
        }
    }
}

impl TopicPrior {
    /// Convert to the serializable mirror. Derived fields (sums, masks) are
    /// dropped where recomputable and kept where they are bit-exact state.
    pub fn to_raw(&self) -> RawPrior {
        match self {
            TopicPrior::Symmetric { beta, .. } => RawPrior::Symmetric { beta: *beta },
            TopicPrior::Fixed { delta, .. } => RawPrior::Fixed {
                delta: delta.clone(),
            },
            TopicPrior::Integrated(table) => RawPrior::Integrated(table.to_raw()),
            TopicPrior::Frozen { phi } => RawPrior::Frozen { phi: phi.clone() },
            TopicPrior::ConceptSet { in_set, beta, .. } => RawPrior::ConceptSet {
                support: in_set
                    .iter()
                    .enumerate()
                    .filter_map(|(w, &m)| m.then_some(w as u32))
                    .collect(),
                beta: *beta,
            },
        }
    }

    /// Rebuild from the mirror against a `vocab_size`-word vocabulary.
    ///
    /// # Errors
    /// Fails if any vector length, word id, or parameter is inconsistent
    /// with `vocab_size` (a corrupt or mismatched artifact).
    pub fn from_raw(raw: RawPrior, vocab_size: usize) -> crate::Result<Self> {
        let check_len = |len: usize, what: &str| {
            if len == vocab_size {
                Ok(())
            } else {
                Err(CoreError::InvalidConfig(format!(
                    "{what} has {len} entries for a {vocab_size}-word vocabulary"
                )))
            }
        };
        match raw {
            RawPrior::Symmetric { beta } => TopicPrior::symmetric(beta, vocab_size),
            RawPrior::Fixed { delta } => {
                check_len(delta.len(), "fixed prior delta")?;
                let sum: f64 = delta.iter().sum();
                if !(sum > 0.0 && sum.is_finite()) {
                    return Err(CoreError::InvalidConfig(format!(
                        "fixed prior delta sums to {sum}"
                    )));
                }
                Ok(TopicPrior::Fixed { delta, sum })
            }
            RawPrior::Integrated(table) => Ok(TopicPrior::Integrated(Box::new(
                IntegrationTable::from_raw(table, vocab_size)?,
            ))),
            RawPrior::Frozen { phi } => {
                check_len(phi.len(), "frozen prior phi")?;
                if !phi.iter().all(|&p| p.is_finite() && p >= 0.0) {
                    return Err(CoreError::InvalidConfig(
                        "frozen prior phi has negative or non-finite entries".into(),
                    ));
                }
                Ok(TopicPrior::Frozen { phi })
            }
            RawPrior::ConceptSet { support, beta } => {
                if let Some(&w) = support.iter().find(|&&w| w as usize >= vocab_size) {
                    return Err(CoreError::InvalidConfig(format!(
                        "concept-set word id {w} outside vocabulary of size {vocab_size}"
                    )));
                }
                TopicPrior::concept_set(&support, beta, vocab_size)
            }
        }
    }
}

/// A full sampler snapshot at a sweep boundary: resuming a run from a
/// checkpoint replays the remaining sweeps **bit-identically** to the
/// uninterrupted run of the same backend (pinned by
/// `tests/shard_equivalence.rs`).
///
/// The counts (`nw`/`nt`) are stored even though they are derivable from
/// `z`: on resume the counts are rebuilt from the assignments and compared
/// against the stored ones, so a checkpoint whose pieces drifted apart
/// (truncated, hand-edited, mismatched corpus) is rejected instead of
/// silently continuing a corrupt chain.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Completed sweeps (resume continues at `sweep + 1`).
    pub sweep: u64,
    /// The run seed. Resume rejects a configured seed that differs —
    /// the chain would continue from these RNG states regardless, so the
    /// run would be silently mislabeled.
    pub seed: u64,
    /// The document–topic prior α the run was trained with. Like `seed`,
    /// α feeds the per-token arithmetic directly (`n_dt + α`), so resume
    /// rejects a configured α whose bits differ. The rest of the
    /// configuration either rides in the checkpoint itself (the priors,
    /// including λ-adaptation state) or only shapes *future* boundaries
    /// (adaptation schedule) that an operator may legitimately change.
    pub alpha: f64,
    /// Packed shard layout and kernel tag. The low 56 bits are the shard
    /// count `S` of [`crate::Backend::ShardedDocs`] (0 for non-sharded
    /// backends, whose sampler state is the single run RNG); the high
    /// byte tags the sweep kernel that produced the chain (0 = flat,
    /// 1 = sparse, 2 = dense). Decode via [`Self::shard_count`] and
    /// [`Self::kernel_kind`] — the raw word exists so the wire encoding
    /// and digest of pre-kernel checkpoints (tag 0 = flat) are unchanged.
    pub shards: u64,
    /// Per-token topic assignments, indexed `[doc][position]`.
    pub z: Vec<Vec<u32>>,
    /// Word–topic counts `n_wt`, row-major by word (`V·T`).
    pub nw: Vec<u32>,
    /// Topic totals `n_t` (`T`).
    pub nt: Vec<u32>,
    /// The run RNG state at the boundary.
    pub main_rng: [u64; 4],
    /// Per-shard RNG states (`S` entries; empty for non-sharded backends).
    pub shard_rngs: Vec<[u64; 4]>,
    /// The current priors — including any λ-adaptation applied so far,
    /// which is sampler state a resume must not replay from scratch.
    pub priors: Vec<RawPrior>,
}

impl TrainCheckpoint {
    /// Topic count `T` implied by the checkpoint.
    pub fn num_topics(&self) -> usize {
        self.nt.len()
    }

    /// Shard count `S` (the low 56 bits of the packed `shards` word), or
    /// 0 for non-sharded backends.
    pub fn shard_count(&self) -> u64 {
        self.shards & SHARD_COUNT_MASK
    }

    /// The sweep kernel that produced the chain, decoded from the high
    /// byte of the packed `shards` word.
    ///
    /// # Errors
    /// Returns an error for an unknown kernel tag (a checkpoint written
    /// by a newer codec, or corruption in the high byte).
    pub fn kernel_kind(&self) -> crate::Result<KernelKind> {
        match self.shards >> KERNEL_TAG_SHIFT {
            0 => Ok(KernelKind::Flat),
            1 => Ok(KernelKind::Sparse),
            2 => Ok(KernelKind::Dense),
            tag => Err(CoreError::InvalidConfig(format!(
                "checkpoint: unknown kernel tag {tag}"
            ))),
        }
    }

    /// Vocabulary size `V` implied by the checkpoint.
    pub fn vocab_size(&self) -> usize {
        if self.nt.is_empty() {
            0
        } else {
            self.nw.len() / self.nt.len()
        }
    }

    /// The checkpoint's raw value payload in bytes: every numeric field
    /// at its in-memory width, excluding container overhead and encoding
    /// framing. This is the quantity telemetry reports per checkpoint —
    /// a stable measure of checkpoint *size* independent of which codec
    /// eventually writes it.
    pub fn payload_bytes(&self) -> u64 {
        let fixed = 8u64 * 4 // sweep, seed, alpha, shards
            + 8 * 4 // main_rng
            + 8 * 4 * self.shard_rngs.len() as u64;
        let z: u64 = self.z.iter().map(|doc| 4 * doc.len() as u64).sum();
        let counts = 4 * (self.nw.len() + self.nt.len()) as u64;
        let priors: u64 = self
            .priors
            .iter()
            .map(|p| match p {
                RawPrior::Symmetric { .. } => 8,
                RawPrior::Fixed { delta } => 8 * delta.len() as u64,
                RawPrior::Integrated(t) => {
                    let layout = match &t.layout {
                        RawIntegrationLayout::Dense { values } => 8 * values.len() as u64,
                        RawIntegrationLayout::Sparse {
                            support,
                            values,
                            zero_values,
                        } => {
                            4 * support.len() as u64 + 8 * (values.len() + zero_values.len()) as u64
                        }
                    };
                    8 * (t.weights.len() + t.prior_log_weights.len() + t.sums.len()) as u64 + layout
                }
                RawPrior::Frozen { phi } => 8 * phi.len() as u64,
                RawPrior::ConceptSet { support, .. } => 8 + 4 * support.len() as u64,
            })
            .sum();
        fixed + z + counts + priors
    }

    /// FNV-1a-64 digest over the checkpoint's entire sampler state —
    /// assignments, counts, RNG streams, seed/α/shard layout, and the
    /// prior kinds with their f64 payload bits. Two checkpoints digest
    /// equal iff continuing them produces the same chain, so recovery
    /// tests can assert "resumed == uninterrupted" with one number
    /// instead of a field-by-field diff.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        fn eat_u64(h: &mut u64, v: u64) {
            eat(h, &v.to_le_bytes());
        }
        let mut h = OFFSET;
        eat_u64(&mut h, self.sweep);
        eat_u64(&mut h, self.seed);
        eat_u64(&mut h, self.alpha.to_bits());
        eat_u64(&mut h, self.shards);
        for doc in &self.z {
            eat_u64(&mut h, doc.len() as u64);
            for &t in doc {
                eat_u64(&mut h, u64::from(t));
            }
        }
        for &n in &self.nw {
            eat_u64(&mut h, u64::from(n));
        }
        for &n in &self.nt {
            eat_u64(&mut h, u64::from(n));
        }
        for &word in &self.main_rng {
            eat_u64(&mut h, word);
        }
        for rng in &self.shard_rngs {
            for &word in rng {
                eat_u64(&mut h, word);
            }
        }
        for prior in &self.priors {
            eat(&mut h, prior.kind().as_bytes());
            match prior {
                RawPrior::Symmetric { beta } => eat_u64(&mut h, beta.to_bits()),
                RawPrior::Fixed { delta } => {
                    for &d in delta {
                        eat_u64(&mut h, d.to_bits());
                    }
                }
                RawPrior::Integrated(t) => {
                    for list in [&t.weights, &t.prior_log_weights, &t.sums] {
                        for &v in list {
                            eat_u64(&mut h, v.to_bits());
                        }
                    }
                    match &t.layout {
                        RawIntegrationLayout::Dense { values } => {
                            for &v in values {
                                eat_u64(&mut h, v.to_bits());
                            }
                        }
                        RawIntegrationLayout::Sparse {
                            support,
                            values,
                            zero_values,
                        } => {
                            for &w in support {
                                eat_u64(&mut h, u64::from(w));
                            }
                            for &v in values {
                                eat_u64(&mut h, v.to_bits());
                            }
                            for &v in zero_values {
                                eat_u64(&mut h, v.to_bits());
                            }
                        }
                    }
                }
                RawPrior::Frozen { phi } => {
                    for &p in phi {
                        eat_u64(&mut h, p.to_bits());
                    }
                }
                RawPrior::ConceptSet { support, beta } => {
                    for &w in support {
                        eat_u64(&mut h, u64::from(w));
                    }
                    eat_u64(&mut h, beta.to_bits());
                }
            }
        }
        h
    }

    /// The topic–word matrix φ at the checkpoint's counts (the same
    /// expression [`crate::FittedModel::phi`] reports at the end of a
    /// run), so a checkpoint can be persisted as a *servable* snapshot of
    /// the partially-trained model.
    ///
    /// # Errors
    /// Fails if the checkpoint's own dimensions disagree (priors vs `nt`,
    /// `nw` not `V·T`-shaped) or a stored prior is inconsistent with the
    /// checkpoint's vocabulary size.
    pub fn phi(&self) -> crate::Result<srclda_math::DenseMatrix<f64>> {
        let v = self.vocab_size();
        let t_count = self.num_topics();
        // Guard the indexing below: this method is reachable before
        // `validate` (e.g. `ModelArtifact::from_checkpoint`), so a
        // malformed checkpoint must error here, not panic.
        if self.priors.len() != t_count {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint: {} priors for {t_count} topics",
                self.priors.len()
            )));
        }
        // vocab_size() floor-divides, so nw.len() != v·T exactly when nw
        // is not T-aligned (a truncated or mispaired counts vector).
        if self.nw.len() != v * t_count {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint: nw has {} entries, not a multiple of T={t_count}",
                self.nw.len()
            )));
        }
        let mut phi = srclda_math::DenseMatrix::zeros(t_count, v);
        for (t, raw) in self.priors.iter().enumerate() {
            let prior = TopicPrior::from_raw(raw.clone(), v)?;
            let nt = self.nt[t] as f64;
            for (w, cell) in phi.row_mut(t).iter_mut().enumerate() {
                *cell = prior.word_weight(w, self.nw[w * t_count + t] as f64, nt);
            }
        }
        phi.normalize_rows();
        Ok(phi)
    }

    /// Structural validation: dimensions agree with each other and with
    /// the given corpus shape, topic ids are in range, and the stored
    /// counts are exactly the counts implied by `z`.
    ///
    /// # Errors
    /// Returns the first inconsistency found (a corrupt or mismatched
    /// checkpoint).
    pub fn validate(
        &self,
        doc_lens: &[u32],
        vocab_size: usize,
        t_count: usize,
    ) -> crate::Result<()> {
        let fail = |msg: String| Err(CoreError::InvalidConfig(format!("checkpoint: {msg}")));
        if self.nt.len() != t_count {
            return fail(format!(
                "{} topic totals for {t_count} topics",
                self.nt.len()
            ));
        }
        if self.priors.len() != t_count {
            return fail(format!("{} priors for {t_count} topics", self.priors.len()));
        }
        if self.nw.len() != vocab_size * t_count {
            return fail(format!(
                "nw has {} entries for V={vocab_size}, T={t_count}",
                self.nw.len()
            ));
        }
        if self.z.len() != doc_lens.len() {
            return fail(format!(
                "{} documents in checkpoint, {} in corpus",
                self.z.len(),
                doc_lens.len()
            ));
        }
        for (d, (doc, &len)) in self.z.iter().zip(doc_lens).enumerate() {
            if doc.len() != len as usize {
                return fail(format!(
                    "document {d} has {} assignments for {len} tokens",
                    doc.len()
                ));
            }
            if let Some(&t) = doc.iter().find(|&&t| t as usize >= t_count) {
                return fail(format!("document {d} assigns topic {t} of {t_count}"));
            }
        }
        if self.shard_count() as usize != self.shard_rngs.len() {
            return fail(format!(
                "{} shard RNG states for {} shards",
                self.shard_rngs.len(),
                self.shard_count()
            ));
        }
        self.kernel_kind()?;
        // The stored topic totals must equal the totals implied by z. The
        // full nw check needs the token stream and happens at resume time
        // (GibbsModel::fit_resumable), but the nt cross-check alone already
        // catches truncation and doc/count mixups cheaply.
        let mut implied_nt = vec![0u64; t_count];
        for doc in &self.z {
            for &t in doc {
                implied_nt[t as usize] += 1;
            }
        }
        for (t, (&stored, &implied)) in self.nt.iter().zip(&implied_nt).enumerate() {
            if stored as u64 != implied {
                return fail(format!(
                    "topic {t} total is {stored} but assignments imply {implied}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_knowledge::{SmoothingFunction, SourceTopic};
    use srclda_math::DiscretizedGaussian;

    fn weight_grid(p: &TopicPrior, v: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for w in 0..v {
            for &(nw, nt) in &[(0.0, 0.0), (2.0, 7.0), (15.0, 40.0)] {
                out.push(p.word_weight(w, nw, nt));
            }
        }
        out
    }

    fn assert_round_trip(p: &TopicPrior, v: usize) {
        let raw = p.to_raw();
        let back = TopicPrior::from_raw(raw.clone(), v).unwrap();
        assert_eq!(weight_grid(p, v), weight_grid(&back, v), "{}", p.kind());
        assert_eq!(raw, back.to_raw(), "second trip must be stable");
        assert_eq!(p.kind(), back.kind());
    }

    #[test]
    fn symmetric_round_trips() {
        assert_round_trip(&TopicPrior::symmetric(0.37, 6).unwrap(), 6);
    }

    #[test]
    fn fixed_round_trips() {
        let t = SourceTopic::new("T", vec![5.0, 0.0, 2.5, 1.0]);
        assert_round_trip(&TopicPrior::fixed_from_source(&t, 0.01), 4);
    }

    #[test]
    fn frozen_round_trips() {
        let t = SourceTopic::new("T", vec![5.0, 0.0, 2.5, 1.0]);
        assert_round_trip(&TopicPrior::frozen_from_source(&t, 0.01), 4);
    }

    #[test]
    fn concept_set_round_trips() {
        assert_round_trip(&TopicPrior::concept_set(&[0, 3], 0.5, 5).unwrap(), 5);
    }

    #[test]
    fn integrated_dense_round_trips() {
        let t = SourceTopic::new("T", vec![6.0, 3.0, 0.0, 1.0]);
        let q = DiscretizedGaussian::unit_interval(0.7, 0.3, 5).unwrap();
        let g = SmoothingFunction::identity();
        let mut p = TopicPrior::integrated(&t, 0.01, &g, &q);
        // Adapt once so the round trip must preserve *posterior* weights,
        // not just the prior discretization.
        p.adapt_lambda(vec![(0usize, 12u32), (1, 4)], 16);
        assert_round_trip(&p, 4);
    }

    #[test]
    fn integrated_sparse_round_trips() {
        let v = 9000;
        let mut counts = vec![0.0; v];
        counts[5] = 4.0;
        counts[7777] = 9.0;
        let t = SourceTopic::new("T", counts);
        let q = DiscretizedGaussian::unit_interval(0.7, 0.3, 4).unwrap();
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&t, 0.01, &g, &q);
        let raw = p.to_raw();
        assert!(matches!(
            &raw,
            RawPrior::Integrated(RawIntegrationTable {
                layout: RawIntegrationLayout::Sparse { .. },
                ..
            })
        ));
        let back = TopicPrior::from_raw(raw, v).unwrap();
        for &w in &[5usize, 6, 7777, 0] {
            assert_eq!(p.word_weight(w, 1.0, 5.0), back.word_weight(w, 1.0, 5.0));
            assert_eq!(p.effective_delta(w), back.effective_delta(w));
        }
    }

    #[test]
    fn adaptation_still_works_after_round_trip() {
        let t = SourceTopic::new("T", vec![40.0, 12.0, 4.0, 1.0]);
        let q = DiscretizedGaussian::unit_interval(0.5, 10.0, 6).unwrap();
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&t, 0.01, &g, &q);
        let mut a = p.clone();
        let mut b = TopicPrior::from_raw(p.to_raw(), 4).unwrap();
        let counts = vec![(0usize, 70u32), (1, 21), (2, 7), (3, 2)];
        a.adapt_lambda(counts.clone(), 100);
        b.adapt_lambda(counts, 100);
        for w in 0..4 {
            assert_eq!(a.word_weight(w, 1.0, 5.0), b.word_weight(w, 1.0, 5.0));
        }
    }

    #[test]
    fn rejects_inconsistent_mirrors() {
        // Wrong delta length.
        assert!(TopicPrior::from_raw(
            RawPrior::Fixed {
                delta: vec![1.0, 2.0]
            },
            3
        )
        .is_err());
        // Zero-mass delta.
        assert!(TopicPrior::from_raw(
            RawPrior::Fixed {
                delta: vec![0.0, 0.0]
            },
            2
        )
        .is_err());
        // Out-of-range concept word.
        assert!(TopicPrior::from_raw(
            RawPrior::ConceptSet {
                support: vec![9],
                beta: 0.5
            },
            3
        )
        .is_err());
        // Bad beta.
        assert!(TopicPrior::from_raw(RawPrior::Symmetric { beta: -1.0 }, 3).is_err());
        // Non-finite frozen phi.
        assert!(TopicPrior::from_raw(
            RawPrior::Frozen {
                phi: vec![0.5, f64::NAN]
            },
            2
        )
        .is_err());
        // Integrated: mismatched level counts.
        let bad = RawIntegrationTable {
            weights: vec![0.5, 0.5],
            prior_log_weights: vec![0.0],
            sums: vec![1.0, 1.0],
            layout: RawIntegrationLayout::Dense {
                values: vec![1.0; 8],
            },
        };
        assert!(TopicPrior::from_raw(RawPrior::Integrated(bad), 4).is_err());
        // Integrated sparse: unsorted support breaks binary search.
        let bad = RawIntegrationTable {
            weights: vec![1.0],
            prior_log_weights: vec![0.0],
            sums: vec![1.0],
            layout: RawIntegrationLayout::Sparse {
                support: vec![3, 1],
                values: vec![1.0, 1.0],
                zero_values: vec![0.1],
            },
        };
        assert!(TopicPrior::from_raw(RawPrior::Integrated(bad), 4).is_err());
    }

    fn toy_checkpoint() -> TrainCheckpoint {
        // 2 docs × [2, 1] tokens, V=2, T=2; z = [[0,1],[1]].
        TrainCheckpoint {
            sweep: 5,
            seed: 9,
            alpha: 0.5,
            shards: 0,
            z: vec![vec![0, 1], vec![1]],
            nw: vec![1, 0, 0, 2],
            nt: vec![1, 2],
            main_rng: [1, 2, 3, 4],
            shard_rngs: vec![],
            priors: vec![
                RawPrior::Symmetric { beta: 0.1 },
                RawPrior::Symmetric { beta: 0.1 },
            ],
        }
    }

    #[test]
    fn checkpoint_validates_consistent_state() {
        let cp = toy_checkpoint();
        assert_eq!(cp.num_topics(), 2);
        assert_eq!(cp.vocab_size(), 2);
        cp.validate(&[2, 1], 2, 2).unwrap();
    }

    #[test]
    fn checkpoint_digest_is_stable_and_sensitive() {
        let cp = toy_checkpoint();
        assert_eq!(cp.digest(), cp.clone().digest(), "digest is a pure value");
        // Any single-field perturbation must change the digest — the
        // digest stands in for field-by-field equality in recovery tests.
        let mut other = cp.clone();
        other.sweep += 1;
        assert_ne!(cp.digest(), other.digest());
        let mut other = cp.clone();
        other.z[1][0] = 0;
        other.nw = vec![2, 0, 0, 1];
        other.nt = vec![2, 1];
        assert_ne!(cp.digest(), other.digest());
        let mut other = cp.clone();
        other.main_rng[3] ^= 1;
        assert_ne!(cp.digest(), other.digest());
        let mut other = cp.clone();
        other.priors[1] = RawPrior::Symmetric { beta: 0.2 };
        assert_ne!(cp.digest(), other.digest());
    }

    #[test]
    fn checkpoint_phi_errors_on_malformed_state_instead_of_panicking() {
        let good = toy_checkpoint();
        assert!(good.phi().is_ok());
        // More priors than topic totals: must be an error, not an
        // out-of-bounds panic (phi() is reachable before validate()).
        let mut bad = good.clone();
        bad.priors.push(RawPrior::Symmetric { beta: 0.1 });
        assert!(bad.phi().is_err());
        // nw not T-aligned: floor-divided vocab_size would mis-index.
        let mut bad = good;
        bad.nw.push(0);
        assert!(bad.phi().is_err());
    }

    #[test]
    fn checkpoint_rejects_inconsistencies() {
        let base = toy_checkpoint();
        // Wrong doc count.
        assert!(base.validate(&[2], 2, 2).is_err());
        // Wrong doc length.
        assert!(base.validate(&[2, 2], 2, 2).is_err());
        // Wrong topic count.
        assert!(base.validate(&[2, 1], 2, 3).is_err());
        // Out-of-range topic assignment.
        let mut bad = base.clone();
        bad.z[0][0] = 7;
        assert!(bad.validate(&[2, 1], 2, 2).is_err());
        // Topic totals inconsistent with assignments.
        let mut bad = base.clone();
        bad.nt = vec![2, 1];
        assert!(bad.validate(&[2, 1], 2, 2).is_err());
        // Shard RNG count disagrees with shard count.
        let mut bad = base.clone();
        bad.shards = 2;
        assert!(bad.validate(&[2, 1], 2, 2).is_err());
        // Unknown kernel tag in the high byte.
        let mut bad = base.clone();
        bad.shards = 7 << 56;
        assert!(bad.validate(&[2, 1], 2, 2).is_err());
        assert!(bad.kernel_kind().is_err());
        // nw sized for the wrong vocabulary.
        let mut bad = base;
        bad.nw = vec![0; 6];
        assert!(bad.validate(&[2, 1], 2, 2).is_err());
    }

    #[test]
    fn kernel_tag_packs_and_decodes() {
        use crate::sampler::KernelKind;
        let mut cp = toy_checkpoint();
        // Pre-kernel checkpoints (high byte zero) decode as flat.
        assert_eq!(cp.kernel_kind().unwrap(), KernelKind::Flat);
        assert_eq!(cp.shard_count(), 0);
        for (kernel, shards) in [
            (KernelKind::Flat, 0),
            (KernelKind::Flat, 4),
            (KernelKind::Sparse, 2),
            (KernelKind::Dense, 3),
        ] {
            cp.shards = pack_shards(kernel, shards);
            assert_eq!(cp.kernel_kind().unwrap(), kernel);
            assert_eq!(cp.shard_count(), shards);
        }
        // Flat tags pack to the raw shard count — old bytes and digests
        // are reproduced exactly.
        assert_eq!(pack_shards(KernelKind::Flat, 4), 4);
    }

    #[test]
    fn kinds_match() {
        let t = SourceTopic::new("T", vec![1.0, 2.0]);
        for p in [
            TopicPrior::symmetric(0.1, 2).unwrap(),
            TopicPrior::fixed_from_source(&t, 0.01),
            TopicPrior::frozen_from_source(&t, 0.01),
            TopicPrior::concept_set(&[0], 0.1, 2).unwrap(),
        ] {
            assert_eq!(p.kind(), p.to_raw().kind());
        }
    }
}
