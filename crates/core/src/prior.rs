//! Per-topic word priors — the single abstraction that unifies every model
//! in the paper.
//!
//! The collapsed Gibbs probability of word `w` under topic `t` (given the
//! current counts `n`) differs only in the topic's prior:
//!
//! | Model            | Prior kind        | Weight for word `w`                                     |
//! |------------------|-------------------|---------------------------------------------------------|
//! | LDA / unlabeled  | [`TopicPrior::Symmetric`]   | `(n_wt + β) / (n_t + Vβ)`                     |
//! | Source-LDA (bijective / mixture) | [`TopicPrior::Fixed`] | `(n_wt + δ_w) / (n_t + Σδ)` — Eq. (2) |
//! | Source-LDA (full) | [`TopicPrior::Integrated`] | `Σₐ wₐ (n_wt + δ_w^{g(λₐ)}) / (n_t + Σδ^{g(λₐ)})` — Eq. (3) |
//! | EDA              | [`TopicPrior::Frozen`]      | `φ_w` (never updated)                          |
//! | CTM              | [`TopicPrior::ConceptSet`]  | `(n_wt + β) / (n_t + |W_c|β)` if `w ∈ W_c` else 0 |
//!
//! The φ estimates (Eq. 1 / Eq. 4) are the same expressions evaluated at the
//! final counts, so [`TopicPrior::word_weight`] serves both sampling and
//! output.
//!
//! ## Canonical arithmetic
//!
//! Every ratio above is evaluated as `numerator * (1.0 / denominator)` —
//! multiply by a reciprocal, never divide directly. This is deliberate: the
//! Gibbs hot-path kernel ([`crate::sampler::kernel`]) caches the per-topic
//! reciprocals and refreshes them incrementally as `n_t` changes, and the
//! kernel's cached weights must match `word_weight` **bit for bit** so the
//! optimized sweep walks the exact chain of the dense reference sweep. Any
//! change to the expression shapes here must be mirrored in the kernel's
//! flat sweep tables (and vice versa); the equivalence is pinned by property
//! tests in the kernel module.

use crate::error::CoreError;
use srclda_knowledge::{SmoothingFunction, SourceTopic};
use srclda_math::DiscretizedGaussian;

/// Threshold deciding the dense-vs-sparse layout for integrated priors: use
/// the dense per-word table when the vocabulary is small or the topic's
/// support covers a sizable fraction of it. Sparse storage keeps the paper's
/// `B = 10000` scaling benchmark within memory (dense would need
/// `O(V·A·B)` floats).
const DENSE_INTEGRATION_MAX_VOCAB: usize = 4096;

/// Sentinel in the sparse layout's per-word row pointer marking a word
/// outside the support (its δ row is the shared `zero_values` row).
const NO_ROW: u32 = u32::MAX;

/// The λ-integration table of one source topic: per quadrature level `a`,
/// the powered hyperparameters `δ^{g(λₐ)}` and their sum.
#[derive(Debug, Clone)]
pub struct IntegrationTable {
    /// Current quadrature weights `wₐ` (initialized to the λ prior's
    /// discretization; per-topic posterior-adapted when adaptive λ is on).
    weights: Vec<f64>,
    /// Log of the prior quadrature weights (the fixed `N(µ, σ)` term of the
    /// λ posterior).
    prior_log_weights: Vec<f64>,
    /// Number of quadrature levels `A`.
    a: usize,
    /// `Σ_w δ_w^{g(λₐ)}` per level.
    sums: Vec<f64>,
    /// `ln Γ(Σ_w δ_w^{g(λₐ)})` per level (adapt baseline, see [`Self::adapt`]).
    sums_lngamma: Vec<f64>,
    /// Storage layout.
    layout: IntegrationLayout,
}

#[derive(Debug, Clone)]
enum IntegrationLayout {
    /// `values[w*A + a] = (n_w + ε)^{g(λₐ)}` for every vocabulary word.
    Dense {
        values: Vec<f64>,
        /// `ln Γ(values[..])`, same layout (adapt baseline cache).
        values_lngamma: Vec<f64>,
        /// The shared off-support δ row `ε^{g(λₐ)}` (empty when the table
        /// was rebuilt from a raw artifact, where support is no longer
        /// recoverable — the kernel then skips the off-support shortcut).
        zero_row: Vec<f64>,
        /// Off-support membership per word (empty when unknown). When
        /// `off_support[w]`, row `w` of `values` is a verbatim copy of
        /// `zero_row` — the invariant behind the kernel's cached
        /// `S2_zero` shortcut.
        off_support: Vec<bool>,
    },
    /// Only support words stored; zero-count words share `zero_values[a] =
    /// ε^{g(λₐ)}`.
    Sparse {
        support: Vec<u32>,
        values: Vec<f64>,
        zero_values: Vec<f64>,
        /// Per-word row pointer: `row_of[w]` is the row index into `values`
        /// (or [`NO_ROW`] for off-support words). Gives the sampling hot
        /// path a direct load where it previously binary-searched `support`
        /// once per (token, topic).
        row_of: Vec<u32>,
        /// `ln Γ(values[..])`, same layout as `values`.
        values_lngamma: Vec<f64>,
        /// `ln Γ(zero_values[..])`.
        zero_lngamma: Vec<f64>,
    },
}

/// Build the per-word row pointer for a sparse layout.
fn build_row_of(support: &[u32], vocab_size: usize) -> Vec<u32> {
    let mut row_of = vec![NO_ROW; vocab_size];
    for (si, &w) in support.iter().enumerate() {
        row_of[w as usize] = si as u32;
    }
    row_of
}

/// `ln Γ` of every entry (the adapt baselines, cached at build time so
/// [`IntegrationTable::adapt`] never recomputes them per call).
fn lngamma_all(values: &[f64]) -> Vec<f64> {
    use srclda_math::special::ln_gamma;
    values.iter().map(|&v| ln_gamma(v)).collect()
}

/// The canonical `S2 = Σₐ δₐ·qrₐ` accumulation of the factored Eq. 3
/// evaluation (see [`IntegrationTable::weight`]): level `a` adds into
/// partial `a mod 4`, partials combine as `(p₀+p₁) + (p₂+p₃)`. The mod-4
/// interleave breaks the floating-point dependency chain that otherwise
/// serializes the sampling hot loop; the statically-unrolled body keeps
/// the four partials in registers. Every evaluation path (this module and
/// the sweep kernel's cached tables) must go through this function — or
/// reproduce it exactly — to keep weights bit-identical.
#[inline]
pub(crate) fn dot_mod4(row: &[f64], qr: &[f64]) -> f64 {
    debug_assert_eq!(row.len(), qr.len());
    let mut s2 = [0.0f64; 4];
    let mut chunks = row.chunks_exact(4);
    let mut qr_chunks = qr.chunks_exact(4);
    for (rc, qc) in chunks.by_ref().zip(qr_chunks.by_ref()) {
        s2[0] += rc[0] * qc[0];
        s2[1] += rc[1] * qc[1];
        s2[2] += rc[2] * qc[2];
        s2[3] += rc[3] * qc[3];
    }
    for (i, (&delta, &q)) in chunks
        .remainder()
        .iter()
        .zip(qr_chunks.remainder())
        .enumerate()
    {
        s2[i] += delta * q;
    }
    (s2[0] + s2[1]) + (s2[2] + s2[3])
}

/// Stack budget for the per-call `qr` scratch row in
/// [`IntegrationTable::weight`] (heap fallback above it; `A` is typically
/// 4–16).
const QR_STACK: usize = 32;

impl IntegrationTable {
    /// Build the table for one source topic.
    pub fn new(
        topic: &SourceTopic,
        epsilon: f64,
        g: &SmoothingFunction,
        quadrature: &DiscretizedGaussian,
    ) -> Self {
        let weights: Vec<f64> = quadrature.weights().to_vec();
        let prior_log_weights: Vec<f64> = weights.iter().map(|&w| w.max(1e-300).ln()).collect();
        let v = topic.vocab_size();
        let a = quadrature.len();
        let exponents: Vec<f64> = quadrature.points().iter().map(|&lam| g.eval(lam)).collect();
        let counts = topic.counts();
        let support: Vec<u32> = (0..v)
            .filter(|&w| counts[w] > 0.0)
            .map(|w| w as u32)
            .collect();
        let dense = v <= DENSE_INTEGRATION_MAX_VOCAB || support.len() * 2 >= v;
        let zero_values: Vec<f64> = exponents.iter().map(|&e| epsilon.powf(e)).collect();
        let mut sums = vec![0.0; a];
        for (ai, &zv) in zero_values.iter().enumerate() {
            sums[ai] = (v - support.len()) as f64 * zv;
        }
        if dense {
            let mut values = vec![0.0; v * a];
            for w in 0..v {
                for (ai, &e) in exponents.iter().enumerate() {
                    let val = if counts[w] > 0.0 {
                        (counts[w] + epsilon).powf(e)
                    } else {
                        zero_values[ai]
                    };
                    values[w * a + ai] = val;
                    if counts[w] > 0.0 {
                        sums[ai] += val;
                    }
                }
            }
            let values_lngamma = lngamma_all(&values);
            let sums_lngamma = lngamma_all(&sums);
            let mut off_support = vec![true; v];
            for &sw in &support {
                off_support[sw as usize] = false;
            }
            Self {
                weights,
                prior_log_weights,
                a,
                sums,
                sums_lngamma,
                layout: IntegrationLayout::Dense {
                    values,
                    values_lngamma,
                    zero_row: zero_values,
                    off_support,
                },
            }
        } else {
            let mut values = vec![0.0; support.len() * a];
            for (si, &w) in support.iter().enumerate() {
                for (ai, &e) in exponents.iter().enumerate() {
                    let val = (counts[w as usize] + epsilon).powf(e);
                    values[si * a + ai] = val;
                    sums[ai] += val;
                }
            }
            let row_of = build_row_of(&support, v);
            let values_lngamma = lngamma_all(&values);
            let zero_lngamma = lngamma_all(&zero_values);
            let sums_lngamma = lngamma_all(&sums);
            Self {
                weights,
                prior_log_weights,
                a,
                sums,
                sums_lngamma,
                layout: IntegrationLayout::Sparse {
                    support,
                    values,
                    zero_values,
                    row_of,
                    values_lngamma,
                    zero_lngamma,
                },
            }
        }
    }

    /// Number of quadrature levels `A`.
    pub fn levels(&self) -> usize {
        self.a
    }

    /// True iff the dense layout was chosen (test/diagnostic use).
    pub fn is_dense(&self) -> bool {
        matches!(self.layout, IntegrationLayout::Dense { .. })
    }

    /// The δ row of word `w` (length `A`): a direct slice into the dense
    /// table, or a `row_of`-pointed row / the shared zero row for the
    /// sparse layout. No binary search on any path.
    #[inline]
    pub(crate) fn delta_row(&self, w: usize) -> &[f64] {
        match &self.layout {
            IntegrationLayout::Dense { values, .. } => &values[w * self.a..(w + 1) * self.a],
            IntegrationLayout::Sparse {
                values,
                zero_values,
                row_of,
                ..
            } => {
                let si = row_of[w];
                if si == NO_ROW {
                    zero_values
                } else {
                    &values[si as usize * self.a..(si as usize + 1) * self.a]
                }
            }
        }
    }

    /// The cached `ln Γ(δ)` row matching [`Self::delta_row`].
    #[inline]
    fn lngamma_row(&self, w: usize) -> &[f64] {
        match &self.layout {
            IntegrationLayout::Dense { values_lngamma, .. } => {
                &values_lngamma[w * self.a..(w + 1) * self.a]
            }
            IntegrationLayout::Sparse {
                values_lngamma,
                zero_lngamma,
                row_of,
                ..
            } => {
                let si = row_of[w];
                if si == NO_ROW {
                    zero_lngamma
                } else {
                    &values_lngamma[si as usize * self.a..(si as usize + 1) * self.a]
                }
            }
        }
    }

    /// The per-level denominator addends `Σ_w δ_w^{g(λₐ)}` (kernel view).
    #[inline]
    pub(crate) fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// The shared off-support δ row, when known (`None` for tables rebuilt
    /// from raw dense artifacts). Paired with [`Self::is_off_support`]:
    /// whenever that returns `true` for `w`, [`Self::delta_row`]`(w)` is
    /// value-identical to this row, so `S2` computed against it can be
    /// cached per topic.
    #[inline]
    pub(crate) fn zero_row(&self) -> Option<&[f64]> {
        match &self.layout {
            IntegrationLayout::Dense { zero_row, .. } => {
                (!zero_row.is_empty()).then_some(&zero_row[..])
            }
            IntegrationLayout::Sparse { zero_values, .. } => Some(zero_values),
        }
    }

    /// Whether word `w` is outside this topic's source support (always
    /// `false` when support is unknown — a conservative answer that only
    /// disables the kernel's `S2_zero` shortcut, never correctness).
    #[inline]
    pub(crate) fn is_off_support(&self, w: usize) -> bool {
        match &self.layout {
            IntegrationLayout::Dense { off_support, .. } => {
                !off_support.is_empty() && off_support[w]
            }
            IntegrationLayout::Sparse { row_of, .. } => row_of[w] == NO_ROW,
        }
    }

    /// The numerically integrated weight (Eq. 3 numerator/denominator pair),
    /// evaluated in the factored form
    ///
    /// ```text
    /// Σₐ wₐ (nw + δₐ) rₐ  =  nw · Σₐ wₐrₐ  +  Σₐ δₐ wₐrₐ ,   rₐ = 1/(nt + Σδₐ)
    /// ```
    ///
    /// with `S1 = Σ wₐrₐ` accumulated in level order, `S2 = Σ δₐ wₐrₐ`
    /// accumulated through [`dot_mod4`] (four interleaved partials), and
    /// the result formed as `nw*S1 + S2`. This shape is canonical: the
    /// kernel caches the per-level `wₐrₐ` products **and** the per-topic
    /// `S1` (both depend only on `nt`), pays one multiply-add per level
    /// for `S2`, and must reproduce this exact sum bit for bit.
    /// (`pub(crate)` so the parallel sampler's flat tables evaluate
    /// integrated weights through this exact code path.)
    #[inline]
    pub(crate) fn weight(&self, w: usize, nw: f64, nt: f64) -> f64 {
        if self.a <= QR_STACK {
            let mut qr = [0.0f64; QR_STACK];
            self.weight_with_scratch(&mut qr[..self.a], w, nw, nt)
        } else {
            let mut qr = vec![0.0; self.a];
            self.weight_with_scratch(&mut qr, w, nw, nt)
        }
    }

    /// [`Self::weight`] with caller-provided `qr` scratch (length `A`).
    #[inline]
    fn weight_with_scratch(&self, qr: &mut [f64], w: usize, nw: f64, nt: f64) -> f64 {
        let row = self.delta_row(w);
        let mut s1 = 0.0;
        for ((slot, &q), &sum) in qr.iter_mut().zip(self.weights.iter()).zip(self.sums.iter()) {
            let v = q * (1.0 / (nt + sum));
            *slot = v;
            s1 += v;
        }
        nw * s1 + dot_mod4(row, qr)
    }

    /// The current quadrature weights (prior weights until adapted).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Start the weights one-hot at the highest-λ level — the paper's
    /// "ideal situation [where] λ will be as close to 1 for most knowledge
    /// based latent topics, with the flexibility to deviate as required by
    /// the data". Pair with [`IntegrationTable::adapt`]: topics anchor to
    /// their articles first, then relax individually.
    pub fn optimistic_start(&mut self) {
        for w in self.weights.iter_mut() {
            *w = 0.0;
        }
        if let Some(last) = self.weights.last_mut() {
            *last = 1.0;
        }
    }

    /// Re-weight the quadrature levels with the λ posterior given this
    /// topic's current counts — the "λ as a hidden parameter of the model"
    /// reading of §III.C.2. Griddy-Gibbs over the grid:
    ///
    /// ```text
    /// w_a ∝ N(λ_a; µ, σ) · p(n_·t | δ^{g(λ_a)})
    ///     = prior_a · B(n_·t + δ_a) / B(δ_a)
    /// ```
    ///
    /// Only words with non-zero counts contribute to the beta-function
    /// ratio (`ln Γ(δ) − ln Γ(δ) = 0` otherwise), so the update is
    /// `O(nnz(topic) · A)`. The `ln Γ(δ)` baselines are cached at
    /// table-build time (one `ln Γ` per entry, ever) so each call pays only
    /// the count-dependent `ln Γ(δ + n)` evaluations.
    ///
    /// `topic_counts` yields the `(word, count)` pairs with `count > 0`.
    pub fn adapt<I: IntoIterator<Item = (usize, u32)>>(&mut self, topic_counts: I, nt: u32) {
        use srclda_math::special::ln_gamma;
        let mut loglik = self.prior_log_weights.clone();
        let ntf = nt as f64;
        for (ai, ll) in loglik.iter_mut().enumerate() {
            *ll -= ln_gamma(self.sums[ai] + ntf) - self.sums_lngamma[ai];
        }
        for (w, n) in topic_counts {
            debug_assert!(n > 0);
            let nf = n as f64;
            let row = self.delta_row(w);
            let base = self.lngamma_row(w);
            for (ai, (&delta, &lg)) in row.iter().zip(base).enumerate() {
                loglik[ai] += ln_gamma(delta + nf) - lg;
            }
        }
        // Softmax back to normalized weights.
        let max = loglik.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            return; // keep previous weights on numeric failure
        }
        let mut sum = 0.0;
        for x in loglik.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        if sum > 0.0 {
            for (w, x) in self.weights.iter_mut().zip(loglik) {
                *w = x / sum;
            }
        }
    }

    /// Convert to the serializable mirror (see [`crate::persist`]). All f64
    /// state is copied verbatim, so the round trip is bit-exact.
    pub fn to_raw(&self) -> crate::persist::RawIntegrationTable {
        use crate::persist::{RawIntegrationLayout, RawIntegrationTable};
        RawIntegrationTable {
            weights: self.weights.clone(),
            prior_log_weights: self.prior_log_weights.clone(),
            sums: self.sums.clone(),
            layout: match &self.layout {
                IntegrationLayout::Dense { values, .. } => RawIntegrationLayout::Dense {
                    values: values.clone(),
                },
                IntegrationLayout::Sparse {
                    support,
                    values,
                    zero_values,
                    ..
                } => RawIntegrationLayout::Sparse {
                    support: support.clone(),
                    values: values.clone(),
                    zero_values: zero_values.clone(),
                },
            },
        }
    }

    /// Rebuild from the mirror, revalidating every structural invariant the
    /// sampling hot path relies on (lengths, sorted sparse support).
    ///
    /// # Errors
    /// Fails on any inconsistency (a corrupt or mismatched artifact).
    pub fn from_raw(
        raw: crate::persist::RawIntegrationTable,
        vocab_size: usize,
    ) -> crate::Result<Self> {
        use crate::persist::RawIntegrationLayout;
        let bad = |msg: String| CoreError::InvalidConfig(format!("integration table: {msg}"));
        let a = raw.weights.len();
        if a == 0 {
            return Err(bad("no quadrature levels".into()));
        }
        if raw.prior_log_weights.len() != a || raw.sums.len() != a {
            return Err(bad(format!(
                "level-count mismatch: {} weights, {} prior weights, {} sums",
                a,
                raw.prior_log_weights.len(),
                raw.sums.len()
            )));
        }
        let layout = match raw.layout {
            RawIntegrationLayout::Dense { values } => {
                if values.len() != vocab_size * a {
                    return Err(bad(format!(
                        "dense table has {} values for V={vocab_size}, A={a}",
                        values.len()
                    )));
                }
                let values_lngamma = lngamma_all(&values);
                // Support membership is not serialized for the dense
                // layout; leave the hints empty (the kernel then computes
                // every row's dot product — slower, never incorrect).
                IntegrationLayout::Dense {
                    values,
                    values_lngamma,
                    zero_row: Vec::new(),
                    off_support: Vec::new(),
                }
            }
            RawIntegrationLayout::Sparse {
                support,
                values,
                zero_values,
            } => {
                if values.len() != support.len() * a {
                    return Err(bad(format!(
                        "sparse table has {} values for {} support words, A={a}",
                        values.len(),
                        support.len()
                    )));
                }
                if zero_values.len() != a {
                    return Err(bad(format!(
                        "{} zero-row values for A={a}",
                        zero_values.len()
                    )));
                }
                if !support.windows(2).all(|p| p[0] < p[1]) {
                    return Err(bad("sparse support is not strictly increasing".into()));
                }
                if let Some(&w) = support.iter().find(|&&w| w as usize >= vocab_size) {
                    return Err(bad(format!(
                        "support word {w} outside vocabulary of size {vocab_size}"
                    )));
                }
                let row_of = build_row_of(&support, vocab_size);
                let values_lngamma = lngamma_all(&values);
                let zero_lngamma = lngamma_all(&zero_values);
                IntegrationLayout::Sparse {
                    support,
                    values,
                    zero_values,
                    row_of,
                    values_lngamma,
                    zero_lngamma,
                }
            }
        };
        let sums_lngamma = lngamma_all(&raw.sums);
        Ok(Self {
            weights: raw.weights,
            prior_log_weights: raw.prior_log_weights,
            a,
            sums: raw.sums,
            sums_lngamma,
            layout,
        })
    }

    /// Expected hyperparameter `E[δ_w^{g(λ)}]` under the quadrature — used
    /// by the joint log-likelihood as the effective Dirichlet parameter.
    pub fn expected_delta(&self, w: usize) -> f64 {
        self.delta_row(w)
            .iter()
            .zip(self.weights.iter())
            .map(|(&v, &q)| q * v)
            .sum()
    }
}

/// A topic's word prior (see module docs for the per-model table).
#[derive(Debug, Clone)]
pub enum TopicPrior {
    /// Symmetric Dirichlet `Dir(β)` over the full vocabulary.
    Symmetric {
        /// The concentration β.
        beta: f64,
        /// Precomputed `V·β` denominator term.
        denom_add: f64,
    },
    /// Fixed asymmetric Dirichlet `Dir(δ)` from source hyperparameters.
    Fixed {
        /// Per-word hyperparameters `δ_w`.
        delta: Vec<f64>,
        /// Precomputed `Σ δ`.
        sum: f64,
    },
    /// λ-integrated source prior (the full Source-LDA model). Boxed: the
    /// table carries several cache vectors, and a mixed prior vector
    /// shouldn't pay its inline size for every symmetric topic (the
    /// sampling hot path reads flattened sweep tables, not this enum).
    Integrated(Box<IntegrationTable>),
    /// Frozen word distribution (EDA): counts never influence the weight.
    Frozen {
        /// The fixed distribution `φ`.
        phi: Vec<f64>,
    },
    /// Concept word set (CTM): support-restricted symmetric prior.
    ConceptSet {
        /// Membership mask over the vocabulary.
        in_set: Vec<bool>,
        /// The concentration β.
        beta: f64,
        /// Precomputed `|W_c|·β`.
        denom_add: f64,
    },
}

impl TopicPrior {
    /// Symmetric prior with concentration `beta` over `v` words.
    pub fn symmetric(beta: f64, v: usize) -> crate::Result<Self> {
        if !(beta > 0.0 && beta.is_finite()) {
            return Err(CoreError::NonPositiveParameter {
                name: "beta",
                value: beta,
            });
        }
        Ok(Self::Symmetric {
            beta,
            denom_add: beta * v as f64,
        })
    }

    /// Fixed prior from a source topic's hyperparameters (Definition 3).
    pub fn fixed_from_source(topic: &SourceTopic, epsilon: f64) -> Self {
        let delta = topic.hyperparameters(epsilon);
        let sum = delta.iter().sum();
        Self::Fixed { delta, sum }
    }

    /// Fixed prior from hyperparameters raised to a constant exponent
    /// (the fixed-λ sweep of §IV.B / Figure 7).
    pub fn fixed_from_powered(topic: &SourceTopic, epsilon: f64, exponent: f64) -> Self {
        let delta = topic.powered_hyperparameters(epsilon, exponent);
        let sum = delta.iter().sum();
        Self::Fixed { delta, sum }
    }

    /// λ-integrated prior (Eq. 3) for the full Source-LDA model.
    pub fn integrated(
        topic: &SourceTopic,
        epsilon: f64,
        g: &SmoothingFunction,
        quadrature: &DiscretizedGaussian,
    ) -> Self {
        Self::Integrated(Box::new(IntegrationTable::new(
            topic, epsilon, g, quadrature,
        )))
    }

    /// Frozen prior (EDA) from a source topic's smoothed distribution.
    pub fn frozen_from_source(topic: &SourceTopic, epsilon: f64) -> Self {
        let delta = topic.hyperparameters(epsilon);
        let sum: f64 = delta.iter().sum();
        let phi = delta.iter().map(|&x| x / sum).collect();
        Self::Frozen { phi }
    }

    /// Concept-set prior (CTM) over `bag` within a `v`-word vocabulary.
    pub fn concept_set(bag: &[u32], beta: f64, v: usize) -> crate::Result<Self> {
        if !(beta > 0.0 && beta.is_finite()) {
            return Err(CoreError::NonPositiveParameter {
                name: "beta",
                value: beta,
            });
        }
        let mut in_set = vec![false; v];
        let mut size = 0usize;
        for &w in bag {
            let w = w as usize;
            if w < v && !in_set[w] {
                in_set[w] = true;
                size += 1;
            }
        }
        Ok(Self::ConceptSet {
            in_set,
            beta,
            denom_add: beta * size as f64,
        })
    }

    /// The sampling/φ weight for word `w` given the effective counts
    /// `nw = n_wt` and `nt = n_t` (Eqs. 1–4 depending on the kind).
    ///
    /// Ratios are evaluated as `numer * (1.0 / denom)` — the canonical
    /// arithmetic the hot-path kernel reproduces from cached reciprocals
    /// (see the module docs).
    #[inline]
    pub fn word_weight(&self, w: usize, nw: f64, nt: f64) -> f64 {
        match self {
            TopicPrior::Symmetric { beta, denom_add } => (nw + beta) * (1.0 / (nt + denom_add)),
            TopicPrior::Fixed { delta, sum } => (nw + delta[w]) * (1.0 / (nt + sum)),
            TopicPrior::Integrated(table) => table.weight(w, nw, nt),
            TopicPrior::Frozen { phi } => phi[w],
            TopicPrior::ConceptSet {
                in_set,
                beta,
                denom_add,
            } => {
                if in_set[w] {
                    (nw + beta) * (1.0 / (nt + denom_add))
                } else {
                    0.0
                }
            }
        }
    }

    /// Whether the counts can change this topic's word distribution (false
    /// for EDA's frozen topics).
    pub fn is_learnable(&self) -> bool {
        !matches!(self, TopicPrior::Frozen { .. })
    }

    /// True iff this prior integrates λ (and therefore supports adaptation).
    pub fn is_integrated(&self) -> bool {
        matches!(self, TopicPrior::Integrated(_))
    }

    /// Posterior-adapt the λ quadrature weights from the topic's current
    /// counts (no-op for non-integrated priors). See
    /// [`IntegrationTable::adapt`].
    pub fn adapt_lambda<I: IntoIterator<Item = (usize, u32)>>(&mut self, topic_counts: I, nt: u32) {
        if let TopicPrior::Integrated(table) = self {
            table.adapt(topic_counts, nt);
        }
    }

    /// Apply the optimistic λ start (no-op for non-integrated priors). See
    /// [`IntegrationTable::optimistic_start`].
    pub fn optimistic_lambda_start(&mut self) {
        if let TopicPrior::Integrated(table) = self {
            table.optimistic_start();
        }
    }

    /// Effective Dirichlet parameter for word `w` (used by the joint
    /// log-likelihood). For frozen priors this is the distribution itself.
    pub fn effective_delta(&self, w: usize) -> f64 {
        match self {
            TopicPrior::Symmetric { beta, .. } => *beta,
            TopicPrior::Fixed { delta, .. } => delta[w],
            TopicPrior::Integrated(table) => table.expected_delta(w),
            TopicPrior::Frozen { phi } => phi[w],
            TopicPrior::ConceptSet { in_set, beta, .. } => {
                if in_set[w] {
                    *beta
                } else {
                    0.0
                }
            }
        }
    }

    /// Short kind name (diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            TopicPrior::Symmetric { .. } => "symmetric",
            TopicPrior::Fixed { .. } => "fixed",
            TopicPrior::Integrated(_) => "integrated",
            TopicPrior::Frozen { .. } => "frozen",
            TopicPrior::ConceptSet { .. } => "concept-set",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_math::rng_from_seed;

    fn topic() -> SourceTopic {
        // V = 4: counts over [pencil, ruler, baseball, umpire]
        SourceTopic::new("School Supplies", vec![6.0, 3.0, 0.0, 0.0])
    }

    #[test]
    fn symmetric_weight_formula() {
        let p = TopicPrior::symmetric(0.5, 4).unwrap();
        // (nw + β) / (nt + Vβ)
        let w = p.word_weight(0, 2.0, 10.0);
        assert!((w - 2.5 / 12.0).abs() < 1e-12);
        assert!(TopicPrior::symmetric(0.0, 4).is_err());
    }

    #[test]
    fn fixed_weight_follows_delta() {
        let p = TopicPrior::fixed_from_source(&topic(), 0.01);
        // At zero counts the weight is proportional to δ.
        let w0 = p.word_weight(0, 0.0, 0.0);
        let w1 = p.word_weight(1, 0.0, 0.0);
        assert!((w0 / w1 - 6.01 / 3.01).abs() < 1e-9);
        // Weights at zero counts normalize over the vocabulary.
        let total: f64 = (0..4).map(|w| p.word_weight(w, 0.0, 0.0)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn powered_prior_flattens_at_zero_exponent() {
        let p = TopicPrior::fixed_from_powered(&topic(), 0.01, 0.0);
        let w0 = p.word_weight(0, 0.0, 0.0);
        let w2 = p.word_weight(2, 0.0, 0.0);
        assert!((w0 - w2).abs() < 1e-12, "exponent 0 ⇒ uniform prior");
    }

    #[test]
    fn frozen_ignores_counts() {
        let p = TopicPrior::frozen_from_source(&topic(), 0.01);
        let a = p.word_weight(0, 0.0, 0.0);
        let b = p.word_weight(0, 100.0, 500.0);
        assert_eq!(a, b);
        assert!(!p.is_learnable());
        // Smoothing keeps zero-count words positive.
        assert!(p.word_weight(2, 0.0, 0.0) > 0.0);
    }

    #[test]
    fn concept_set_restricts_support() {
        let p = TopicPrior::concept_set(&[0, 1, 1], 0.5, 4).unwrap();
        assert!(p.word_weight(0, 0.0, 0.0) > 0.0);
        assert_eq!(p.word_weight(2, 5.0, 5.0), 0.0);
        // Duplicate bag entries are not double counted: |W_c| = 2.
        if let TopicPrior::ConceptSet { denom_add, .. } = &p {
            assert!((denom_add - 1.0).abs() < 1e-12);
        } else {
            panic!("wrong kind");
        }
    }

    fn quad_and_weights(a: usize) -> (DiscretizedGaussian, Vec<f64>) {
        let q = DiscretizedGaussian::unit_interval(0.7, 0.3, a).unwrap();
        let w = q.weights().to_vec();
        (q, w)
    }

    #[test]
    fn integrated_weight_is_convex_combination() {
        let (q, _w) = quad_and_weights(6);
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&topic(), 0.01, &g, &q);
        // The integrated weight is a convex combination of the per-level
        // Fixed weights, so it must lie within their min/max envelope
        // (taken over all quadrature points — the per-exponent weight is
        // not monotone in the exponent).
        let levels: Vec<TopicPrior> = q
            .points()
            .iter()
            .map(|&e| TopicPrior::fixed_from_powered(&topic(), 0.01, e))
            .collect();
        for word in 0..4 {
            let wi = p.word_weight(word, 1.0, 3.0);
            let vals: Vec<f64> = levels
                .iter()
                .map(|l| l.word_weight(word, 1.0, 3.0))
                .collect();
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                wi >= min - 1e-12 && wi <= max + 1e-12,
                "word {word}: {wi} outside [{min}, {max}]"
            );
        }
    }

    #[test]
    fn integrated_dense_and_sparse_agree() {
        // Build a topic big enough to trigger the sparse layout and compare
        // against a forced-dense equivalent (small vocab with same counts
        // can't work — instead compare sparse weight vs manual computation).
        let v = 10_000;
        let mut counts = vec![0.0; v];
        counts[3] = 7.0;
        counts[9000] = 2.0;
        let t = SourceTopic::new("Sparse", counts);
        let (q, w) = quad_and_weights(4);
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&t, 0.01, &g, &q);
        if let TopicPrior::Integrated(table) = &p {
            assert!(
                !table.is_dense(),
                "large sparse topic should pick sparse layout"
            );
        }
        // Manual Eq. 3 at word 3 and at an off-support word.
        let exps: Vec<f64> = q.points().to_vec();
        let manual = |word: usize, nw: f64, nt: f64| -> f64 {
            let mut acc = 0.0;
            for (a, &e) in exps.iter().enumerate() {
                let delta_w = if t.counts()[word] > 0.0 {
                    (t.counts()[word] + 0.01f64).powf(e)
                } else {
                    0.01f64.powf(e)
                };
                let sum: f64 = (7.0f64 + 0.01).powf(e)
                    + (2.0f64 + 0.01).powf(e)
                    + (v as f64 - 2.0) * 0.01f64.powf(e);
                acc += w[a] * (nw + delta_w) / (nt + sum);
            }
            acc
        };
        for &(word, nw, nt) in &[
            (3usize, 2.0, 9.0),
            (500usize, 0.0, 9.0),
            (9000usize, 1.0, 4.0),
        ] {
            let got = p.word_weight(word, nw, nt);
            let want = manual(word, nw, nt);
            assert!((got - want).abs() < 1e-12, "word {word}: {got} vs {want}");
        }
    }

    #[test]
    fn small_vocab_uses_dense_layout() {
        let (q, _w) = quad_and_weights(4);
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&topic(), 0.01, &g, &q);
        if let TopicPrior::Integrated(table) = &p {
            assert!(table.is_dense());
            assert_eq!(table.levels(), 4);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn effective_delta_matches_kind() {
        let p = TopicPrior::symmetric(0.25, 4).unwrap();
        assert_eq!(p.effective_delta(2), 0.25);
        let p = TopicPrior::fixed_from_source(&topic(), 0.01);
        assert!((p.effective_delta(0) - 6.01).abs() < 1e-12);
        let (q, _w) = quad_and_weights(4);
        let g = SmoothingFunction::identity();
        let p = TopicPrior::integrated(&topic(), 0.01, &g, &q);
        // Expected delta for word 0 lies between the min/max powered values.
        let d = p.effective_delta(0);
        assert!(d > 1.0 && d < 6.01);
    }

    #[test]
    fn kinds_are_labeled() {
        assert_eq!(TopicPrior::symmetric(1.0, 2).unwrap().kind(), "symmetric");
        assert_eq!(
            TopicPrior::fixed_from_source(&topic(), 0.01).kind(),
            "fixed"
        );
    }

    #[test]
    fn adaptation_concentrates_on_the_matching_level() {
        // Source topic: a strongly skewed distribution over 4 words.
        let src = SourceTopic::new("T", vec![400.0, 120.0, 40.0, 10.0]);
        let q = DiscretizedGaussian::unit_interval(0.5, 10.0, 8).unwrap(); // ~flat prior
        let g = SmoothingFunction::identity();

        // Counts sampled *from the source distribution* (high λ world).
        let mut aligned = TopicPrior::integrated(&src, 0.01, &g, &q);
        let aligned_counts = vec![(0usize, 700u32), (1, 210), (2, 70), (3, 20)];
        aligned.adapt_lambda(aligned_counts, 1000);

        // Near-uniform counts (low λ world: topic ignores the article).
        let mut drifted = TopicPrior::integrated(&src, 0.01, &g, &q);
        let drifted_counts = vec![(0usize, 250u32), (1, 250), (2, 250), (3, 250)];
        drifted.adapt_lambda(drifted_counts, 1000);

        let mean_lambda = |p: &TopicPrior| -> f64 {
            if let TopicPrior::Integrated(t) = p {
                t.weights()
                    .iter()
                    .zip(q.points())
                    .map(|(&w, &x)| w * x)
                    .sum()
            } else {
                panic!("wrong kind")
            }
        };
        let hi = mean_lambda(&aligned);
        let lo = mean_lambda(&drifted);
        assert!(
            hi > lo + 0.2,
            "aligned counts should imply higher λ: {hi:.3} vs {lo:.3}"
        );
        // Weights stay normalized.
        if let TopicPrior::Integrated(t) = &aligned {
            let sum: f64 = t.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn adaptation_is_a_noop_for_other_kinds() {
        let mut p = TopicPrior::symmetric(0.5, 4).unwrap();
        let before = p.word_weight(0, 1.0, 2.0);
        p.adapt_lambda(vec![(0usize, 5u32)], 5);
        assert_eq!(p.word_weight(0, 1.0, 2.0), before);
        assert!(!p.is_integrated());
    }

    #[test]
    fn sampling_sanity_under_fixed_prior() {
        // Draw topics for a two-topic system where topic 0's δ strongly
        // prefers word 0: word-0 tokens should mostly go to topic 0.
        let t0 = SourceTopic::new("A", vec![50.0, 1.0]);
        let t1 = SourceTopic::new("B", vec![1.0, 50.0]);
        let p0 = TopicPrior::fixed_from_source(&t0, 0.01);
        let p1 = TopicPrior::fixed_from_source(&t1, 0.01);
        let mut rng = rng_from_seed(1);
        let mut hits = 0;
        for _ in 0..1000 {
            let w0 = p0.word_weight(0, 0.0, 0.0);
            let w1 = p1.word_weight(0, 0.0, 0.0);
            let i = srclda_math::sample_categorical(&[w0, w1], &mut rng);
            if i == 0 {
                hits += 1;
            }
        }
        assert!(hits > 900, "topic 0 should dominate: {hits}");
    }
}
