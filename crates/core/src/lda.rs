//! Classic latent Dirichlet allocation (Blei et al. 2003) with the
//! collapsed Gibbs sampler of Griffiths & Steyvers — the unsupervised
//! baseline of every experiment in the paper.

use crate::model::{FittedModel, GibbsModel};
use crate::params::ModelConfig;
use crate::prior::TopicPrior;
use srclda_corpus::Corpus;

/// A configured LDA model.
#[derive(Debug, Clone)]
pub struct Lda {
    k: usize,
    config: ModelConfig,
}

/// Builder for [`Lda`].
#[derive(Debug, Clone)]
pub struct LdaBuilder {
    k: usize,
    config: ModelConfig,
}

impl Lda {
    /// Start building an LDA model.
    pub fn builder() -> LdaBuilder {
        LdaBuilder {
            k: 10,
            config: ModelConfig::default(),
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.k
    }

    /// The run configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Fit on a corpus.
    ///
    /// # Errors
    /// Propagates engine errors (empty corpus etc.).
    pub fn fit(&self, corpus: &Corpus) -> crate::Result<FittedModel> {
        let v = corpus.vocab_size();
        let priors: crate::Result<Vec<TopicPrior>> = (0..self.k)
            .map(|_| TopicPrior::symmetric(self.config.beta, v))
            .collect();
        let model = GibbsModel::new(priors?, vec![None; self.k], v, self.config.clone())?;
        model.fit(corpus)
    }
}

impl LdaBuilder {
    /// Set the number of topics `K`.
    pub fn topics(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the document–topic prior α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Set the topic–word prior β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.beta = beta;
        self
    }

    /// Set the Gibbs iteration count.
    pub fn iterations(mut self, iters: usize) -> Self {
        self.config.iterations = iters;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the sampler backend.
    pub fn backend(mut self, backend: crate::sampler::Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Set trace recording options.
    pub fn trace(mut self, trace: crate::params::TraceConfig) -> Self {
        self.config.trace = trace;
        self
    }

    /// Finish, validating the configuration.
    ///
    /// # Errors
    /// Fails on zero topics or invalid hyperparameters.
    pub fn build(self) -> crate::Result<Lda> {
        if self.k == 0 {
            return Err(crate::CoreError::NoTopics);
        }
        self.config.validate()?;
        Ok(Lda {
            k: self.k,
            config: self.config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..6 {
            b.add_tokens("a", &["cat", "dog", "cat", "pet"]);
            b.add_tokens("b", &["stock", "bond", "stock", "fund"]);
        }
        b.build()
    }

    #[test]
    fn builder_validates() {
        assert!(Lda::builder().topics(0).build().is_err());
        assert!(Lda::builder().topics(2).alpha(-1.0).build().is_err());
        let lda = Lda::builder().topics(3).build().unwrap();
        assert_eq!(lda.num_topics(), 3);
    }

    #[test]
    fn fit_recovers_structure() {
        let c = corpus();
        let lda = Lda::builder()
            .topics(2)
            .alpha(0.5)
            .beta(0.1)
            .iterations(120)
            .seed(9)
            .build()
            .unwrap();
        let fitted = lda.fit(&c).unwrap();
        // Each topic's top words come from one of the two clusters.
        let vocab = c.vocabulary();
        for t in 0..2 {
            let tops: Vec<&str> = fitted
                .top_words(t, 2)
                .into_iter()
                .map(|w| vocab.word(srclda_corpus::WordId::new(w)))
                .collect();
            let animal = tops.iter().all(|w| ["cat", "dog", "pet"].contains(w));
            let finance = tops.iter().all(|w| ["stock", "bond", "fund"].contains(w));
            assert!(animal || finance, "mixed topic: {tops:?}");
        }
        // LDA topics are unlabeled.
        assert!(fitted.labels().iter().all(Option::is_none));
    }
}
