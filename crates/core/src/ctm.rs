//! The Concept-topic model (Chemudugunta et al. 2008) — the baseline that
//! represents each known concept as a *word set*.
//!
//! A token may only be assigned to a concept whose bag contains its word;
//! within the bag, the concept's word distribution is learned under a
//! symmetric prior restricted to the bag. The paper's CTM runs mix these
//! concepts with unconstrained topics and build each bag from "the top
//! 10,000 words by frequency for each topic" (§IV.C) — controlled here by
//! [`CtmBuilder::bag_size`].

use crate::model::{FittedModel, GibbsModel};
use crate::params::ModelConfig;
use crate::prior::TopicPrior;
use srclda_corpus::Corpus;
use srclda_knowledge::KnowledgeSource;

/// A configured concept-topic model.
#[derive(Debug, Clone)]
pub struct Ctm {
    source: KnowledgeSource,
    k_unconstrained: usize,
    bag_size: Option<usize>,
    config: ModelConfig,
}

/// Builder for [`Ctm`].
#[derive(Debug, Clone, Default)]
pub struct CtmBuilder {
    source: Option<KnowledgeSource>,
    k_unconstrained: usize,
    bag_size: Option<usize>,
    config: ModelConfig,
}

impl Ctm {
    /// Start building a CTM.
    pub fn builder() -> CtmBuilder {
        CtmBuilder::default()
    }

    /// Total topic count (unconstrained + concepts).
    pub fn total_topics(&self) -> usize {
        self.k_unconstrained + self.source.len()
    }

    /// Fit on a corpus.
    ///
    /// # Errors
    /// Propagates engine errors.
    pub fn fit(&self, corpus: &Corpus) -> crate::Result<FittedModel> {
        let v = corpus.vocab_size();
        if self.source.vocab_size() != v {
            return Err(crate::CoreError::VocabularyMismatch {
                source: self.source.vocab_size(),
                corpus: v,
            });
        }
        let mut priors: Vec<TopicPrior> = Vec::with_capacity(self.total_topics());
        let mut labels: Vec<Option<String>> = Vec::with_capacity(self.total_topics());
        for _ in 0..self.k_unconstrained {
            priors.push(TopicPrior::symmetric(self.config.beta, v)?);
            labels.push(None);
        }
        for topic in self.source.topics() {
            let bag: Vec<u32> = match self.bag_size {
                Some(n) => topic.top_words(n).into_iter().map(|w| w.0).collect(),
                None => topic.support().into_iter().map(|w| w.0).collect(),
            };
            priors.push(TopicPrior::concept_set(&bag, self.config.beta, v)?);
            labels.push(Some(topic.label().to_string()));
        }
        GibbsModel::new(priors, labels, v, self.config.clone())?.fit(corpus)
    }
}

impl CtmBuilder {
    /// Set the knowledge source supplying the concepts (required).
    pub fn knowledge_source(mut self, ks: KnowledgeSource) -> Self {
        self.source = Some(ks);
        self
    }

    /// Number of unconstrained (ordinary LDA) topics to mix in.
    pub fn unconstrained_topics(mut self, k: usize) -> Self {
        self.k_unconstrained = k;
        self
    }

    /// Limit each concept's bag to its `n` highest-count words (the paper
    /// used 10,000). Default: the full support.
    pub fn bag_size(mut self, n: usize) -> Self {
        self.bag_size = Some(n);
        self
    }

    /// Set the document–topic prior α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Set the word prior β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.beta = beta;
        self
    }

    /// Set the Gibbs iteration count.
    pub fn iterations(mut self, iters: usize) -> Self {
        self.config.iterations = iters;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the sampler backend.
    pub fn backend(mut self, backend: crate::sampler::Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Finish, validating the configuration.
    ///
    /// # Errors
    /// Fails without a knowledge source.
    pub fn build(self) -> crate::Result<Ctm> {
        let source = self
            .source
            .ok_or(crate::CoreError::MissingKnowledgeSource)?;
        if source.is_empty() {
            return Err(crate::CoreError::MissingKnowledgeSource);
        }
        self.config.validate()?;
        Ok(Ctm {
            source,
            k_unconstrained: self.k_unconstrained,
            bag_size: self.bag_size,
            config: self.config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};
    use srclda_knowledge::KnowledgeSourceBuilder;

    fn setup() -> (Corpus, KnowledgeSource) {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..6 {
            b.add_tokens("d1", &["gas", "pipeline", "gas", "novel"]);
            b.add_tokens("d2", &["stock", "market", "stock", "novel"]);
        }
        let c = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_article("Natural Gas", "gas pipeline energy");
        ks.add_article("Stock Market", "stock market trader");
        let source = ks.build(c.vocabulary());
        (c, source)
    }

    #[test]
    fn concept_support_is_respected() {
        let (c, ks) = setup();
        let ctm = Ctm::builder()
            .knowledge_source(ks)
            .unconstrained_topics(1)
            .alpha(0.5)
            .beta(0.1)
            .iterations(80)
            .seed(5)
            .build()
            .unwrap();
        let fitted = ctm.fit(&c).unwrap();
        // "novel" is outside both concept bags; its assignments must all be
        // the unconstrained topic 0.
        let novel = c.vocabulary().get("novel").unwrap();
        for (d, doc) in c.docs().iter().enumerate() {
            for (j, &w) in doc.tokens().iter().enumerate() {
                if w == novel {
                    assert_eq!(
                        fitted.assignments()[d][j],
                        0,
                        "out-of-bag token escaped to a concept"
                    );
                }
            }
        }
        // Concept φ rows place zero mass outside the bag.
        let gas_topic = 1;
        let stock_word = c.vocabulary().get("stock").unwrap().index();
        assert_eq!(fitted.phi_row(gas_topic)[stock_word], 0.0);
    }

    #[test]
    fn concepts_attract_their_words() {
        let (c, ks) = setup();
        let ctm = Ctm::builder()
            .knowledge_source(ks)
            .unconstrained_topics(1)
            .alpha(0.5)
            .beta(0.1)
            .iterations(80)
            .seed(6)
            .build()
            .unwrap();
        let fitted = ctm.fit(&c).unwrap();
        let gas = c.vocabulary().get("gas").unwrap().index();
        // "gas" can belong to topic 0 (unconstrained) or Natural Gas (1) but
        // never Stock Market (2).
        assert_eq!(fitted.phi_row(2)[gas], 0.0);
    }

    #[test]
    fn bag_size_truncates_support() {
        let (c, ks) = setup();
        let ctm = Ctm::builder()
            .knowledge_source(ks)
            .unconstrained_topics(1)
            .bag_size(1)
            .iterations(10)
            .build()
            .unwrap();
        let fitted = ctm.fit(&c).unwrap();
        // Natural Gas bag truncated to its single top word ⇒ only one
        // non-zero φ entry.
        let nonzero = fitted.phi_row(1).iter().filter(|&&x| x > 0.0).count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn builder_requires_source() {
        assert!(Ctm::builder().build().is_err());
    }
}
