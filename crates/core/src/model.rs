//! The shared Gibbs engine: [`GibbsModel`] (a configured model ready to
//! fit) and [`FittedModel`] (the posterior estimates).

use crate::counts::CountMatrices;
use crate::error::CoreError;
use crate::loglik;
use crate::params::ModelConfig;
use crate::persist::TrainCheckpoint;
use crate::prior::TopicPrior;
use crate::sampler::{run_sweeps, SamplerRngs, SweepCache, SweepContext};
use rand::Rng;
use srclda_corpus::Corpus;
use srclda_math::{rng_from_seed, rng_from_state, rng_state, spawn_rng, DenseMatrix, SldaRng};
use srclda_obs::{NoopObserver, SpanTimer, TrainEvent, TrainObserver};

/// A fully-specified topic model: one prior per topic, optional labels, and
/// the run configuration. Construct via the model builders ([`crate::Lda`],
/// [`crate::SourceLda`], [`crate::Eda`], [`crate::Ctm`]) or directly for
/// custom mixtures.
#[derive(Debug, Clone)]
pub struct GibbsModel {
    priors: Vec<TopicPrior>,
    labels: Vec<Option<String>>,
    vocab_size: usize,
    config: ModelConfig,
}

impl GibbsModel {
    /// Assemble an engine from parts.
    ///
    /// # Errors
    /// Fails if there are no topics, label/prior lengths mismatch, or the
    /// configuration is invalid.
    pub fn new(
        priors: Vec<TopicPrior>,
        labels: Vec<Option<String>>,
        vocab_size: usize,
        config: ModelConfig,
    ) -> crate::Result<Self> {
        if priors.is_empty() {
            return Err(CoreError::NoTopics);
        }
        if labels.len() != priors.len() {
            return Err(CoreError::InvalidConfig(format!(
                "{} labels for {} topics",
                labels.len(),
                priors.len()
            )));
        }
        config.validate()?;
        Ok(Self {
            priors,
            labels,
            vocab_size,
            config,
        })
    }

    /// Total topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.priors.len()
    }

    /// The per-topic priors.
    pub fn priors(&self) -> &[TopicPrior] {
        &self.priors
    }

    /// Per-topic labels (`None` for unlabeled topics) — what a
    /// [`FittedModel`] will carry, available before fitting so tooling can
    /// persist mid-training snapshots.
    pub fn labels(&self) -> &[Option<String>] {
        &self.labels
    }

    /// The run configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Run the collapsed Gibbs sampler on `corpus`.
    ///
    /// # Errors
    /// Fails on an empty corpus or vocabulary mismatch.
    pub fn fit(&self, corpus: &Corpus) -> crate::Result<FittedModel> {
        self.fit_resumable(corpus, None, None, |_| Ok(()))
    }

    /// [`Self::fit`] with training checkpoint/resume support.
    ///
    /// * `resume` — continue from a [`TrainCheckpoint`] captured by an
    ///   earlier run of the **same model configuration** on the **same
    ///   corpus**. The remaining sweeps replay bit-identically to the
    ///   uninterrupted run: chunk boundaries (λ-adaptation, checkpoints)
    ///   never perturb the chain, because every boundary rebuilds sweep
    ///   state from values that are themselves pure functions of
    ///   `(z, counts, priors, RNG states)`.
    /// * `checkpoint_every` — invoke `on_checkpoint` with a fresh
    ///   checkpoint after every `n` completed sweeps (sweep indices are
    ///   absolute, so a resumed run checkpoints at the same boundaries the
    ///   uninterrupted one would). An error from the callback aborts the
    ///   fit.
    ///
    /// Bit-identity covers the *sampler state* — assignments, counts,
    /// priors, φ/θ. Recorded traces ([`crate::params::TraceConfig`]) are
    /// **not** part of
    /// a checkpoint: a resumed run's `loglik_trace`/`snapshots` cover only
    /// the sweeps it ran itself (entries before the resume point live in
    /// the interrupted run's output).
    ///
    /// # Errors
    /// Everything [`Self::fit`] rejects, plus: a checkpoint that is
    /// structurally corrupt, disagrees with the corpus (dimensions or
    /// counts-vs-assignments), was taken past `iterations`, or whose shard
    /// layout disagrees with the configured backend.
    pub fn fit_resumable<F>(
        &self,
        corpus: &Corpus,
        resume: Option<&TrainCheckpoint>,
        checkpoint_every: Option<usize>,
        on_checkpoint: F,
    ) -> crate::Result<FittedModel>
    where
        F: FnMut(&TrainCheckpoint) -> crate::Result<()>,
    {
        self.fit_observed(
            corpus,
            resume,
            checkpoint_every,
            on_checkpoint,
            &mut NoopObserver,
        )
    }

    /// [`Self::fit_resumable`] with a telemetry observer attached.
    ///
    /// The observer receives a [`TrainEvent`] value snapshot after every
    /// sweep (duration, throughput, traced log-likelihood, backend detail
    /// like sparse bucket routing and per-shard timings), every
    /// λ-adaptation, every checkpoint, and at completion. Observation is
    /// strictly read-only: the observer never draws from the RNG and never
    /// touches sampler state, so **attaching any observer leaves the
    /// trained model bit-identical** to running without one (pinned by
    /// `tests/telemetry.rs`). With the default [`NoopObserver`]
    /// (`enabled() == false`), the loop skips even the per-sweep clock
    /// reads — disabled telemetry costs one branch per sweep.
    ///
    /// # Errors
    /// Exactly those of [`Self::fit_resumable`]; observers cannot fail the
    /// fit.
    pub fn fit_observed<F>(
        &self,
        corpus: &Corpus,
        resume: Option<&TrainCheckpoint>,
        checkpoint_every: Option<usize>,
        mut on_checkpoint: F,
        observer: &mut dyn TrainObserver,
    ) -> crate::Result<FittedModel>
    where
        F: FnMut(&TrainCheckpoint) -> crate::Result<()>,
    {
        if corpus.num_tokens() == 0 {
            return Err(CoreError::EmptyCorpus);
        }
        if corpus.vocab_size() != self.vocab_size {
            return Err(CoreError::VocabularyMismatch {
                source: self.vocab_size,
                corpus: corpus.vocab_size(),
            });
        }
        if checkpoint_every == Some(0) {
            return Err(CoreError::InvalidConfig(
                "checkpoint interval must be at least 1 sweep".into(),
            ));
        }
        let t_count = self.num_topics();
        let tokens: Vec<Vec<u32>> = corpus
            .docs()
            .iter()
            .map(|d| d.tokens().iter().map(|w| w.0).collect())
            .collect();
        let doc_lens: Vec<u32> = tokens.iter().map(|d| d.len() as u32).collect();
        let counts = CountMatrices::new(self.vocab_size, t_count, &doc_lens);
        let backend = self.config.backend;
        let total_iters = self.config.iterations;

        // Sampler state: assignments, counts, priors, RNG streams, and the
        // completed-sweep index — initialized fresh or from the checkpoint.
        let mut rng;
        let mut z: Vec<Vec<u32>>;
        let mut priors: Vec<TopicPrior>;
        let mut shard_rngs: Vec<SldaRng>;
        let mut completed: usize;
        match resume {
            None => {
                rng = rng_from_seed(self.config.seed);
                // "Initialize C_topics to random topic assignments"
                // (Algorithm 1).
                z = tokens
                    .iter()
                    .enumerate()
                    .map(|(d, doc)| {
                        doc.iter()
                            .map(|&w| {
                                let t = rng.gen_range(0..t_count);
                                counts.increment(w as usize, d, t);
                                t as u32
                            })
                            .collect()
                    })
                    .collect();
                // Priors are cloned so adaptive λ can re-weight quadrature
                // levels between sweep chunks without mutating the
                // configured model.
                priors = self.priors.clone();
                if self.config.lambda_optimistic_start {
                    for p in priors.iter_mut() {
                        p.optimistic_lambda_start();
                    }
                }
                // Sharded backend: split one stream per shard from the run
                // RNG — shards 1..S are spawned in shard order, then shard
                // 0 *continues* the run stream, so S = 1 spawns nothing
                // and walks Backend::Serial's exact chain.
                shard_rngs = Vec::new();
                if backend.is_sharded() {
                    for _ in 1..backend.shards() {
                        shard_rngs.push(spawn_rng(&mut rng));
                    }
                    shard_rngs.insert(0, rng.clone());
                }
                completed = 0;
            }
            Some(cp) => {
                cp.validate(&doc_lens, self.vocab_size, t_count)?;
                let expected_shards = if backend.is_sharded() {
                    backend.shards() as u64
                } else {
                    0
                };
                if cp.shard_count() != expected_shards {
                    return Err(CoreError::InvalidConfig(format!(
                        "checkpoint was taken with shard layout {} but the backend expects {expected_shards}",
                        cp.shard_count()
                    )));
                }
                // The kernel tag guards sampling *arithmetic*, not
                // scheduling: flat and dense kernels walk bit-identical
                // chains (so swapping between them is legitimate), but the
                // sparse bucket kernel draws from cached bucket masses —
                // resuming a sparse chain densely (or vice versa) would
                // silently fork the chain while keeping the same label.
                let cp_kernel = cp.kernel_kind()?;
                if cp_kernel.is_sparse() != backend.kernel().is_sparse() {
                    return Err(CoreError::InvalidConfig(format!(
                        "checkpoint was trained with the {cp_kernel:?} kernel but the backend \
                         uses the {:?} kernel — sparse and dense-family kernels draw \
                         different chains, so resuming would silently switch the \
                         sampling arithmetic",
                        backend.kernel()
                    )));
                }
                if cp.sweep > total_iters as u64 {
                    return Err(CoreError::InvalidConfig(format!(
                        "checkpoint is at sweep {} but the run is configured for {total_iters}",
                        cp.sweep
                    )));
                }
                if cp.seed != self.config.seed {
                    return Err(CoreError::InvalidConfig(format!(
                        "checkpoint was trained with seed {} but the model is configured \
                         with seed {} — resuming would silently mislabel the run",
                        cp.seed, self.config.seed
                    )));
                }
                // α feeds every token draw ((n_dt + α) in the weight pass),
                // so a changed α breaks bit-identity just as silently as a
                // changed seed; compare bits, not approximate values.
                if cp.alpha.to_bits() != self.config.alpha.to_bits() {
                    return Err(CoreError::InvalidConfig(format!(
                        "checkpoint was trained with alpha {} but the model is configured \
                         with alpha {}",
                        cp.alpha, self.config.alpha
                    )));
                }
                z = cp.z.clone();
                for (d, doc) in tokens.iter().enumerate() {
                    for (j, &w) in doc.iter().enumerate() {
                        counts.increment(w as usize, d, z[d][j] as usize);
                    }
                }
                // The stored counts must be exactly the counts the corpus
                // and assignments imply — a mismatch means the checkpoint
                // belongs to a different corpus (or was corrupted).
                if counts.snapshot_nw() != cp.nw || counts.snapshot_nt() != cp.nt {
                    return Err(CoreError::InvalidConfig(
                        "checkpoint counts disagree with its assignments on this corpus \
                         (checkpoint from a different corpus?)"
                            .into(),
                    ));
                }
                priors = cp
                    .priors
                    .iter()
                    .map(|raw| TopicPrior::from_raw(raw.clone(), self.vocab_size))
                    .collect::<crate::Result<_>>()?;
                rng = rng_from_state(cp.main_rng);
                shard_rngs = cp.shard_rngs.iter().map(|&s| rng_from_state(s)).collect();
                completed = cp.sweep as usize;
            }
        }

        let mut loglik_trace: Vec<(usize, f64)> = Vec::new();
        let mut loglik_clamped_tokens = 0u64;
        let mut snapshots: Vec<(usize, DenseMatrix<f64>)> = Vec::new();
        let trace = self.config.trace.clone();
        let adapt_every = self
            .config
            .lambda_update_every
            .filter(|_| priors.iter().any(TopicPrior::is_integrated));
        let burn_in = self.config.lambda_burn_in;
        // The first λ-adaptation boundary strictly after `completed`:
        // {burn_in + j·m, j ≥ 0} \ {0}. Chunks end at these boundaries (or
        // at checkpoint boundaries, or at the end of the run); splitting a
        // chunk never changes the chain, only where bookkeeping happens.
        let next_adapt_boundary = |completed: usize| -> usize {
            match adapt_every {
                None => usize::MAX,
                Some(_) if completed < burn_in => burn_in,
                Some(m) => burn_in + ((completed - burn_in) / m + 1) * m,
            }
        };
        let next_checkpoint_boundary = |completed: usize| -> usize {
            match checkpoint_every {
                None => usize::MAX,
                Some(every) => (completed / every + 1) * every,
            }
        };
        // Backend sweep state that survives chunk boundaries (the serial
        // kernel's combined prior table, the sharded backend's per-shard
        // workspaces) — λ re-weighting never touches its contents.
        let mut sweep_cache = SweepCache::default();
        // Telemetry spans exist only when an enabled observer is attached;
        // the disabled path never reads the clock.
        let observing = observer.enabled();
        let tokens_per_sweep: u64 = doc_lens.iter().map(|&l| u64::from(l)).sum();
        let run_start_sweep = completed;
        let run_span = observing.then(SpanTimer::start);
        let mut sweep_mark = observing.then(SpanTimer::start);
        while completed < total_iters {
            let chunk_end = next_adapt_boundary(completed)
                .min(next_checkpoint_boundary(completed))
                .min(total_iters);
            let chunk = chunk_end - completed;
            let ctx = SweepContext {
                tokens: &tokens,
                counts: &counts,
                priors: &priors,
                alpha: self.config.alpha,
            };
            let base = completed;
            let priors_ref: &[TopicPrior] = &priors;
            run_sweeps(
                backend,
                &ctx,
                &mut z,
                SamplerRngs {
                    main: &mut rng,
                    shards: &mut shard_rngs,
                },
                chunk,
                &mut sweep_cache,
                |iter_in_chunk, stats| {
                    let iter = base + iter_in_chunk;
                    // Measure the sweep before the trace work below, so a
                    // traced log-likelihood evaluation is not billed to the
                    // sweep that happened to trigger it.
                    let sweep_secs = sweep_mark.as_ref().map(SpanTimer::elapsed_secs);
                    let mut sweep_loglik = None;
                    let mut sweep_clamped = 0u64;
                    if let Some(every) = trace.log_likelihood_every {
                        if every > 0 && iter.is_multiple_of(every) {
                            let ll = loglik::joint_word_log_likelihood_counted(&counts, priors_ref);
                            loglik_clamped_tokens += ll.clamped_tokens;
                            sweep_clamped = ll.clamped_tokens;
                            sweep_loglik = Some(ll.value);
                            loglik_trace.push((iter, ll.value));
                        }
                    }
                    if trace.phi_snapshots.contains(&iter) {
                        snapshots.push((iter, compute_phi(&counts, priors_ref)));
                    }
                    if let Some(secs) = sweep_secs {
                        let tokens_per_sec = if secs > 0.0 {
                            tokens_per_sweep as f64 / secs
                        } else {
                            0.0
                        };
                        observer.on_event(&TrainEvent::Sweep {
                            sweep: iter as u64,
                            duration_secs: secs,
                            tokens: tokens_per_sweep,
                            tokens_per_sec,
                            loglik: sweep_loglik,
                            loglik_clamped_tokens: sweep_clamped,
                        });
                        if let Some(counts) = stats.buckets {
                            observer.on_event(&TrainEvent::SparseBuckets {
                                sweep: iter as u64,
                                counts,
                            });
                        }
                        if let Some(timings) = &stats.shards {
                            observer.on_event(&TrainEvent::ShardSweep {
                                sweep: iter as u64,
                                timings: timings.clone(),
                            });
                        }
                        sweep_mark = Some(SpanTimer::start());
                    }
                },
            );
            completed = chunk_end;
            // λ-adaptation runs exactly at its own boundaries — a
            // checkpoint boundary that is not an adaptation boundary must
            // not trigger an extra adaptation (that would make the chain
            // depend on the checkpoint interval).
            let at_adapt_boundary = match adapt_every {
                Some(m) => completed >= burn_in.max(1) && (completed - burn_in).is_multiple_of(m),
                None => false,
            };
            if at_adapt_boundary && completed < total_iters {
                // Topic-sharded (bit-identical for any thread count, so
                // hardware parallelism never perturbs the chain — see
                // `sampler::adapt`).
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let span = observing.then(SpanTimer::start);
                crate::sampler::adapt::adapt_integrated_priors(&mut priors, &counts, threads);
                // Adaptation re-weights the integrated priors' quadrature
                // levels; the sparse kernel's cached reciprocals and
                // smoothing baselines for exactly those topics are now
                // stale. Repatch them in place instead of discarding the
                // whole cache — everything else in it (deviation lists,
                // non-zero lists, non-integrated baselines) is untouched
                // by adaptation. The sharded workspaces need no patching:
                // they resynchronize their count-dependent caches from the
                // fresh prior tables at every sweep start.
                if let Some(sparse) = sweep_cache.sparse.as_mut() {
                    sparse.repatch_adapted(&priors, &counts);
                }
                if let Some(span) = span {
                    observer.on_event(&TrainEvent::Adapt {
                        sweep: completed as u64,
                        duration_secs: span.elapsed_secs(),
                        threads: threads as u64,
                    });
                }
            }
            if let Some(every) = checkpoint_every {
                if completed.is_multiple_of(every) {
                    let cp = TrainCheckpoint {
                        sweep: completed as u64,
                        seed: self.config.seed,
                        alpha: self.config.alpha,
                        shards: crate::persist::pack_shards(
                            backend.kernel(),
                            if backend.is_sharded() {
                                backend.shards() as u64
                            } else {
                                0
                            },
                        ),
                        z: z.clone(),
                        nw: counts.snapshot_nw(),
                        nt: counts.snapshot_nt(),
                        main_rng: rng_state(&rng),
                        shard_rngs: shard_rngs.iter().map(rng_state).collect(),
                        priors: priors.iter().map(TopicPrior::to_raw).collect(),
                    };
                    let span = observing.then(SpanTimer::start);
                    on_checkpoint(&cp)?;
                    if let Some(span) = span {
                        observer.on_event(&TrainEvent::Checkpoint {
                            sweep: completed as u64,
                            bytes: cp.payload_bytes(),
                            duration_secs: span.elapsed_secs(),
                        });
                    }
                }
            }
            // Boundary work (adaptation, checkpointing) has its own spans;
            // don't bill it to the next sweep's duration.
            if observing {
                sweep_mark = Some(SpanTimer::start());
            }
        }

        if let Some(run_span) = run_span {
            let duration_secs = run_span.elapsed_secs();
            let sweeps = (total_iters - run_start_sweep) as u64;
            let sampled = sweeps * tokens_per_sweep;
            let tokens_per_sec = if duration_secs > 0.0 {
                sampled as f64 / duration_secs
            } else {
                0.0
            };
            observer.on_event(&TrainEvent::FitComplete {
                sweeps,
                duration_secs,
                tokens_per_sec,
                loglik_clamped_tokens,
            });
        }

        let phi = compute_phi(&counts, &priors);
        let theta = compute_theta(&counts, self.config.alpha);
        Ok(FittedModel {
            phi,
            theta,
            assignments: z,
            labels: self.labels.clone(),
            priors,
            counts,
            alpha: self.config.alpha,
            loglik_trace,
            loglik_clamped_tokens,
            snapshots,
        })
    }
}

/// Topic–word distributions from the final counts (Eq. 1 for fixed priors,
/// Eq. 4 for λ-integrated ones — both are exactly the prior's
/// [`TopicPrior::word_weight`] at the final counts).
pub(crate) fn compute_phi(counts: &CountMatrices, priors: &[TopicPrior]) -> DenseMatrix<f64> {
    let t_count = priors.len();
    let v = counts.vocab_size();
    let mut phi = DenseMatrix::zeros(t_count, v);
    for (t, prior) in priors.iter().enumerate() {
        let nt = counts.nt(t) as f64;
        let row = phi.row_mut(t);
        for (w, cell) in row.iter_mut().enumerate() {
            *cell = prior.word_weight(w, counts.nw(w, t) as f64, nt);
        }
    }
    // The expressions already normalize analytically; renormalize to absorb
    // floating-point drift (and the CTM's support-restricted rows).
    phi.normalize_rows();
    phi
}

/// Document–topic distributions (Eq. 1): `θ_td = (n_dt + α) / (n_d + Tα)`.
pub(crate) fn compute_theta(counts: &CountMatrices, alpha: f64) -> DenseMatrix<f64> {
    let d_count = counts.num_docs();
    let t_count = counts.num_topics();
    let mut theta = DenseMatrix::zeros(d_count, t_count);
    for d in 0..d_count {
        let denom = counts.doc_len(d) as f64 + t_count as f64 * alpha;
        let row = theta.row_mut(d);
        for (t, cell) in row.iter_mut().enumerate() {
            *cell = (counts.nd(d, t) as f64 + alpha) / denom;
        }
    }
    theta
}

/// The result of a Gibbs run: posterior point estimates, assignments,
/// labels, and recorded traces.
#[derive(Debug)]
pub struct FittedModel {
    phi: DenseMatrix<f64>,
    theta: DenseMatrix<f64>,
    assignments: Vec<Vec<u32>>,
    labels: Vec<Option<String>>,
    priors: Vec<TopicPrior>,
    counts: CountMatrices,
    alpha: f64,
    loglik_trace: Vec<(usize, f64)>,
    loglik_clamped_tokens: u64,
    snapshots: Vec<(usize, DenseMatrix<f64>)>,
}

impl FittedModel {
    /// Number of topics `T`.
    pub fn num_topics(&self) -> usize {
        self.phi.rows()
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.phi.cols()
    }

    /// Topic–word matrix φ (`T × V`, rows normalized).
    pub fn phi(&self) -> &DenseMatrix<f64> {
        &self.phi
    }

    /// One topic's word distribution.
    pub fn phi_row(&self, t: usize) -> &[f64] {
        self.phi.row(t)
    }

    /// Document–topic matrix θ (`D × T`, rows normalized).
    pub fn theta(&self) -> &DenseMatrix<f64> {
        &self.theta
    }

    /// One document's topic distribution.
    pub fn theta_row(&self, d: usize) -> &[f64] {
        self.theta.row(d)
    }

    /// Final per-token topic assignments, indexed `[doc][position]`.
    pub fn assignments(&self) -> &[Vec<u32>] {
        &self.assignments
    }

    /// Per-topic labels (`None` for unlabeled topics).
    pub fn labels(&self) -> &[Option<String>] {
        &self.labels
    }

    /// Label of one topic.
    pub fn label(&self, t: usize) -> Option<&str> {
        self.labels[t].as_deref()
    }

    /// The priors the model was fitted with.
    pub fn priors(&self) -> &[TopicPrior] {
        &self.priors
    }

    /// The final count matrices (frozen training counts for perplexity).
    pub fn counts(&self) -> &CountMatrices {
        &self.counts
    }

    /// The document–topic prior α used in the fit.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Indices of the `n` most probable words of topic `t`, descending.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<usize> {
        srclda_math::simplex::top_n_indices(self.phi.row(t), n)
    }

    /// Recorded `(iteration, log-likelihood)` pairs.
    pub fn loglik_trace(&self) -> &[(usize, f64)] {
        &self.loglik_trace
    }

    /// Total tokens whose frozen-topic word probability had to be clamped
    /// across every recorded [`Self::loglik_trace`] evaluation (see
    /// [`crate::loglik::WordLogLikelihood`]). Non-zero means the trace
    /// values floor a numerically degenerate likelihood rather than
    /// measure it exactly; always 0 when no trace was recorded.
    pub fn loglik_clamped_tokens(&self) -> u64 {
        self.loglik_clamped_tokens
    }

    /// Recorded `(iteration, φ)` snapshots.
    pub fn snapshots(&self) -> &[(usize, DenseMatrix<f64>)] {
        &self.snapshots
    }

    /// Number of documents in which topic `t` received at least
    /// `min_tokens` assignments.
    pub fn topic_doc_frequency(&self, t: usize, min_tokens: u32) -> usize {
        self.counts.topic_doc_frequency(t, min_tokens)
    }

    /// Document frequencies of all topics in one pass over the counts (see
    /// [`CountMatrices::topic_doc_frequencies`]).
    pub fn topic_doc_frequencies(&self, min_tokens: u32) -> Vec<usize> {
        self.counts.topic_doc_frequencies(min_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TraceConfig;
    use crate::sampler::Backend;
    use srclda_corpus::{CorpusBuilder, Tokenizer};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..8 {
            b.add_tokens("school", &["pencil", "pencil", "ruler", "eraser"]);
            b.add_tokens("sports", &["baseball", "umpire", "baseball", "glove"]);
        }
        b.build()
    }

    fn config(iters: usize) -> ModelConfig {
        ModelConfig {
            iterations: iters,
            seed: 3,
            ..ModelConfig::default()
        }
    }

    fn symmetric_model(corpus: &Corpus, k: usize, cfg: ModelConfig) -> GibbsModel {
        let v = corpus.vocab_size();
        let priors = (0..k)
            .map(|_| TopicPrior::symmetric(0.1, v).unwrap())
            .collect();
        GibbsModel::new(priors, vec![None; k], v, cfg).unwrap()
    }

    #[test]
    fn fit_produces_normalized_outputs() {
        let c = corpus();
        let fitted = symmetric_model(&c, 2, config(50)).fit(&c).unwrap();
        assert_eq!(fitted.num_topics(), 2);
        assert_eq!(fitted.vocab_size(), c.vocab_size());
        for t in 0..2 {
            let sum: f64 = fitted.phi_row(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "phi row {t} sums to {sum}");
        }
        for d in 0..c.num_docs() {
            let sum: f64 = fitted.theta_row(d).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta row {d} sums to {sum}");
        }
        assert!(fitted.counts().check_invariants());
    }

    #[test]
    fn two_clean_topics_are_recovered() {
        let c = corpus();
        let fitted = symmetric_model(&c, 2, config(150)).fit(&c).unwrap();
        // The top word sets of the two topics should separate school words
        // from sports words.
        let vocab = c.vocabulary();
        let tops: Vec<Vec<&str>> = (0..2)
            .map(|t| {
                fitted
                    .top_words(t, 3)
                    .into_iter()
                    .map(|w| vocab.word(srclda_corpus::WordId::new(w)))
                    .collect()
            })
            .collect();
        let school = ["pencil", "ruler", "eraser"];
        let sports = ["baseball", "umpire", "glove"];
        let t0_school = tops[0].iter().filter(|w| school.contains(w)).count();
        let t0_sports = tops[0].iter().filter(|w| sports.contains(w)).count();
        assert!(
            t0_school == 3 || t0_sports == 3,
            "topics failed to separate: {tops:?}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let c = corpus();
        let f1 = symmetric_model(&c, 2, config(30)).fit(&c).unwrap();
        let f2 = symmetric_model(&c, 2, config(30)).fit(&c).unwrap();
        assert_eq!(f1.assignments(), f2.assignments());
        assert_eq!(f1.phi().as_slice(), f2.phi().as_slice());
    }

    #[test]
    fn traces_and_snapshots_recorded() {
        let c = corpus();
        let mut cfg = config(20);
        cfg.trace = TraceConfig {
            log_likelihood_every: Some(5),
            phi_snapshots: vec![1, 10],
        };
        let fitted = symmetric_model(&c, 2, cfg).fit(&c).unwrap();
        let iters: Vec<usize> = fitted.loglik_trace().iter().map(|&(i, _)| i).collect();
        assert_eq!(iters, vec![5, 10, 15, 20]);
        let snap_iters: Vec<usize> = fitted.snapshots().iter().map(|&(i, _)| i).collect();
        assert_eq!(snap_iters, vec![1, 10]);
        // Log-likelihood should generally improve from the random start.
        let first = fitted.loglik_trace()[0].1;
        let last = fitted.loglik_trace().last().unwrap().1;
        assert!(last >= first - 1.0, "loglik degraded: {first} → {last}");
    }

    #[test]
    fn rejects_mismatched_corpus() {
        let c = corpus();
        let other = {
            let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
            b.add_tokens("d", &["only", "three", "words"]);
            b.build()
        };
        let model = symmetric_model(&c, 2, config(5));
        assert!(matches!(
            model.fit(&other),
            Err(CoreError::VocabularyMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty_corpus() {
        let c = corpus();
        let empty = CorpusBuilder::new().build();
        let model = symmetric_model(&c, 2, config(5));
        assert!(matches!(model.fit(&empty), Err(CoreError::EmptyCorpus)));
    }

    #[test]
    fn rejects_bad_construction() {
        let c = corpus();
        let v = c.vocab_size();
        assert!(matches!(
            GibbsModel::new(vec![], vec![], v, config(5)),
            Err(CoreError::NoTopics)
        ));
        let priors = vec![TopicPrior::symmetric(0.1, v).unwrap()];
        assert!(GibbsModel::new(priors, vec![None, None], v, config(5)).is_err());
    }

    #[test]
    fn parallel_backend_matches_serial_through_public_api() {
        let c = corpus();
        let mut cfg_serial = config(25);
        cfg_serial.backend = Backend::Serial;
        let mut cfg_par = config(25);
        cfg_par.backend = Backend::SimpleParallel { threads: 3 };
        let f1 = symmetric_model(&c, 4, cfg_serial).fit(&c).unwrap();
        let f2 = symmetric_model(&c, 4, cfg_par).fit(&c).unwrap();
        assert_eq!(f1.assignments(), f2.assignments());
    }
}
