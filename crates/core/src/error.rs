//! Error type for model construction and fitting.

use std::fmt;

/// Errors surfaced by the model builders and the Gibbs engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The model was configured with no topics at all.
    NoTopics,
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The corpus is empty (no documents or no tokens).
    EmptyCorpus,
    /// The knowledge source's vocabulary does not match the corpus.
    VocabularyMismatch {
        /// Vocabulary size the knowledge source was built against.
        source: usize,
        /// Vocabulary size of the corpus being fitted.
        corpus: usize,
    },
    /// A required knowledge source was missing.
    MissingKnowledgeSource,
    /// A numeric subroutine failed.
    Math(srclda_math::MathError),
    /// Invalid configuration combination.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoTopics => write!(f, "model must have at least one topic"),
            CoreError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be > 0, got {value}")
            }
            CoreError::EmptyCorpus => write!(f, "corpus has no tokens to model"),
            CoreError::VocabularyMismatch { source, corpus } => write!(
                f,
                "knowledge source vocabulary ({source}) does not match corpus vocabulary ({corpus})"
            ),
            CoreError::MissingKnowledgeSource => {
                write!(f, "this model variant requires a knowledge source")
            }
            CoreError::Math(e) => write!(f, "numeric error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<srclda_math::MathError> for CoreError {
    fn from(e: srclda_math::MathError) -> Self {
        CoreError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::NoTopics.to_string().contains("topic"));
        let e = CoreError::VocabularyMismatch {
            source: 10,
            corpus: 20,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("20"));
        let e = CoreError::NonPositiveParameter {
            name: "alpha",
            value: 0.0,
        };
        assert!(e.to_string().contains("alpha"));
    }

    #[test]
    fn math_errors_convert() {
        let m = srclda_math::MathError::Empty("weights");
        let e: CoreError = m.into();
        assert!(matches!(e, CoreError::Math(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
