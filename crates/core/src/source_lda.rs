//! Source-LDA — the paper's model, in all three variants of §III.
//!
//! * [`Variant::Bijective`] (§III.A): every topic is one knowledge-source
//!   document; `φ_k ~ Dir(δ_k)` with `δ_k` the source hyperparameters.
//! * [`Variant::Mixture`] (§III.B): `K` unlabeled symmetric-β topics mixed
//!   with the source topics (Eq. 2).
//! * [`Variant::Full`] (§III.C): per-topic divergence `λ_t ~ N(µ, σ)` mapped
//!   through the smoothing function `g_t` and integrated out numerically
//!   with `A` quadrature steps (Eq. 3–4). Superset reduction over the fitted
//!   model is provided by [`crate::reduction`].
//!
//! A fixed exponent can be forced with [`SourceLdaBuilder::fixed_lambda`]
//! (the fixed-λ sweep of Figure 7).

use crate::model::{FittedModel, GibbsModel};
use crate::params::{ModelConfig, SmoothingMode};
use crate::prior::TopicPrior;
use srclda_corpus::Corpus;
use srclda_knowledge::{KnowledgeSource, SmoothingFunction};
use srclda_math::{rng_from_seed, DiscretizedGaussian};

/// Which Source-LDA variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// 1-to-1 topics ↔ source documents (§III.A). Ignores the unlabeled
    /// topic count.
    Bijective,
    /// Known mixture of `K` unlabeled + source topics (§III.B).
    Mixture,
    /// The full model with λ integration (§III.C).
    Full,
}

/// A configured Source-LDA model.
#[derive(Debug, Clone)]
pub struct SourceLda {
    source: KnowledgeSource,
    variant: Variant,
    k_unlabeled: usize,
    fixed_lambda: Option<f64>,
    config: ModelConfig,
}

/// Builder for [`SourceLda`].
#[derive(Debug, Clone, Default)]
pub struct SourceLdaBuilder {
    source: Option<KnowledgeSource>,
    variant: Option<Variant>,
    k_unlabeled: usize,
    fixed_lambda: Option<f64>,
    config: ModelConfig,
}

impl SourceLda {
    /// Start building a Source-LDA model.
    pub fn builder() -> SourceLdaBuilder {
        SourceLdaBuilder::default()
    }

    /// Number of unlabeled topics `K`.
    pub fn unlabeled_topics(&self) -> usize {
        match self.variant {
            Variant::Bijective => 0,
            _ => self.k_unlabeled,
        }
    }

    /// Total topic count `T = K + S`.
    pub fn total_topics(&self) -> usize {
        self.unlabeled_topics() + self.source.len()
    }

    /// The model variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The run configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Fit on a corpus.
    ///
    /// For [`Variant::Full`] this first computes the per-topic smoothing
    /// functions (Algorithm 1's "for t = K+1 to T: Calculate gₜ") according
    /// to the configured [`SmoothingMode`].
    ///
    /// # Errors
    /// Fails on vocabulary mismatch or engine errors.
    pub fn fit(&self, corpus: &Corpus) -> crate::Result<FittedModel> {
        let model = self.assemble(corpus.vocab_size())?;
        model.fit(corpus)
    }

    /// Build the underlying engine without fitting (exposed for diagnostics
    /// and benchmarks that time the sampler in isolation).
    pub fn assemble(&self, vocab_size: usize) -> crate::Result<GibbsModel> {
        if self.source.is_empty() {
            return Err(crate::CoreError::MissingKnowledgeSource);
        }
        if self.source.vocab_size() != vocab_size {
            return Err(crate::CoreError::VocabularyMismatch {
                source: self.source.vocab_size(),
                corpus: vocab_size,
            });
        }
        let k = self.unlabeled_topics();
        let s = self.source.len();
        let mut priors: Vec<TopicPrior> = Vec::with_capacity(k + s);
        let mut labels: Vec<Option<String>> = Vec::with_capacity(k + s);
        for _ in 0..k {
            priors.push(TopicPrior::symmetric(self.config.beta, vocab_size)?);
            labels.push(None);
        }
        match (self.variant, self.fixed_lambda) {
            (_, Some(lambda)) => {
                // Fixed-λ sweep (Figure 7): δ^λ with a constant exponent.
                for topic in self.source.topics() {
                    priors.push(TopicPrior::fixed_from_powered(
                        topic,
                        self.config.epsilon,
                        lambda,
                    ));
                    labels.push(Some(topic.label().to_string()));
                }
            }
            (Variant::Bijective | Variant::Mixture, None) => {
                for topic in self.source.topics() {
                    priors.push(TopicPrior::fixed_from_source(topic, self.config.epsilon));
                    labels.push(Some(topic.label().to_string()));
                }
            }
            (Variant::Full, None) => {
                let quadrature = DiscretizedGaussian::unit_interval(
                    self.config.mu,
                    self.config.sigma,
                    self.config.approximation_steps,
                )?;
                // A dedicated RNG stream so smoothing estimation does not
                // perturb the sampling chain.
                let mut g_rng = rng_from_seed(self.config.seed ^ 0x5f5f_5f5f_5f5f_5f5f);
                let mut shared_g: Option<SmoothingFunction> = None;
                for topic in self.source.topics() {
                    let g = match &self.config.smoothing {
                        SmoothingMode::Identity => SmoothingFunction::identity(),
                        SmoothingMode::PerTopic(cfg) => {
                            SmoothingFunction::estimate(topic, self.config.epsilon, cfg, &mut g_rng)
                        }
                        SmoothingMode::Shared(cfg) => shared_g
                            .get_or_insert_with(|| {
                                SmoothingFunction::estimate(
                                    topic,
                                    self.config.epsilon,
                                    cfg,
                                    &mut g_rng,
                                )
                            })
                            .clone(),
                    };
                    priors.push(TopicPrior::integrated(
                        topic,
                        self.config.epsilon,
                        &g,
                        &quadrature,
                    ));
                    labels.push(Some(topic.label().to_string()));
                }
            }
        }
        GibbsModel::new(priors, labels, vocab_size, self.config.clone())
    }
}

impl SourceLdaBuilder {
    /// Set the knowledge source (required).
    pub fn knowledge_source(mut self, ks: KnowledgeSource) -> Self {
        self.source = Some(ks);
        self
    }

    /// Select the variant (defaults to [`Variant::Full`]).
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = Some(v);
        self
    }

    /// Number of unlabeled topics `K` (ignored by the bijective variant).
    pub fn unlabeled_topics(mut self, k: usize) -> Self {
        self.k_unlabeled = k;
        self
    }

    /// Force a constant exponent λ for all source topics (Figure 7 sweep).
    pub fn fixed_lambda(mut self, lambda: f64) -> Self {
        self.fixed_lambda = Some(lambda);
        self
    }

    /// Set the document–topic prior α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Set the unlabeled-topic word prior β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.beta = beta;
        self
    }

    /// Set Definition 3's ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Set the λ prior `N(µ, σ)`.
    pub fn lambda_prior(mut self, mu: f64, sigma: f64) -> Self {
        self.config.mu = mu;
        self.config.sigma = sigma;
        self
    }

    /// Set the quadrature steps `A`.
    pub fn approximation_steps(mut self, a: usize) -> Self {
        self.config.approximation_steps = a;
        self
    }

    /// Enable adaptive λ: every `m` sweeps the quadrature weights of each
    /// source topic are re-weighted with the λ posterior given the topic's
    /// current counts, letting "the flexibility of different topics to be
    /// influenced differently by λ" (§IV.B) actually materialize per topic.
    pub fn adaptive_lambda(mut self, every: usize) -> Self {
        self.config.lambda_update_every = Some(every);
        self
    }

    /// Sweeps to run before the first λ adaptation (see
    /// [`ModelConfig::lambda_burn_in`]).
    pub fn lambda_burn_in(mut self, sweeps: usize) -> Self {
        self.config.lambda_burn_in = sweeps;
        self
    }

    /// Anchor every source topic at λ ≈ 1 initially and let adaptation
    /// relax each one (see [`ModelConfig::lambda_optimistic_start`]).
    pub fn optimistic_lambda_start(mut self) -> Self {
        self.config.lambda_optimistic_start = true;
        self
    }

    /// Set the smoothing mode for `g`.
    pub fn smoothing(mut self, mode: SmoothingMode) -> Self {
        self.config.smoothing = mode;
        self
    }

    /// Set the Gibbs iteration count.
    pub fn iterations(mut self, iters: usize) -> Self {
        self.config.iterations = iters;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the sampler backend.
    pub fn backend(mut self, backend: crate::sampler::Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Set trace recording options.
    pub fn trace(mut self, trace: crate::params::TraceConfig) -> Self {
        self.config.trace = trace;
        self
    }

    /// Finish, validating the configuration.
    ///
    /// # Errors
    /// Fails without a knowledge source or with invalid hyperparameters.
    pub fn build(self) -> crate::Result<SourceLda> {
        let source = self
            .source
            .ok_or(crate::CoreError::MissingKnowledgeSource)?;
        if source.is_empty() {
            return Err(crate::CoreError::MissingKnowledgeSource);
        }
        self.config.validate()?;
        if let Some(lambda) = self.fixed_lambda {
            if !(0.0..=1.0).contains(&lambda) {
                return Err(crate::CoreError::InvalidConfig(format!(
                    "fixed lambda must lie in [0, 1], got {lambda}"
                )));
            }
        }
        Ok(SourceLda {
            source,
            variant: self.variant.unwrap_or(Variant::Full),
            k_unlabeled: self.k_unlabeled,
            fixed_lambda: self.fixed_lambda,
            config: self.config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};
    use srclda_knowledge::KnowledgeSourceBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..10 {
            b.add_tokens("d1", &["pencil", "pencil", "umpire"]);
            b.add_tokens("d2", &["ruler", "ruler", "baseball"]);
        }
        b.build()
    }

    fn knowledge(corpus: &Corpus) -> KnowledgeSource {
        // Wikipedia-scale articles: hundreds of occurrences, so the source
        // prior dominates the (tiny) corpus counts the way a real article
        // dominates a 3-word document in the paper's case study.
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_counts(
            "School Supplies",
            vec![("pencil".into(), 400.0), ("ruler".into(), 300.0)],
        );
        ks.add_counts(
            "Baseball",
            vec![("baseball".into(), 300.0), ("umpire".into(), 200.0)],
        );
        ks.build(corpus.vocabulary())
    }

    #[test]
    fn builder_requires_knowledge_source() {
        assert!(matches!(
            SourceLda::builder().build(),
            Err(crate::CoreError::MissingKnowledgeSource)
        ));
    }

    #[test]
    fn bijective_solves_the_case_study() {
        // The §I case study: with prior knowledge, pencil/ruler tokens land
        // in "School Supplies" and umpire/baseball in "Baseball".
        let c = corpus();
        let ks = knowledge(&c);
        let model = SourceLda::builder()
            .knowledge_source(ks)
            .variant(Variant::Bijective)
            .alpha(0.5)
            .iterations(200)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(model.total_topics(), 2);
        let fitted = model.fit(&c).unwrap();
        let school = fitted
            .labels()
            .iter()
            .position(|l| l.as_deref() == Some("School Supplies"))
            .unwrap() as u32;
        let baseball = 1 - school;
        for d in (0..c.num_docs()).step_by(2) {
            // d1-style documents: pencil, pencil, umpire.
            assert_eq!(fitted.assignments()[d][0], school, "pencil");
            assert_eq!(fitted.assignments()[d][1], school, "pencil");
            assert_eq!(fitted.assignments()[d][2], baseball, "umpire");
        }
    }

    #[test]
    fn mixture_adds_unlabeled_topics() {
        let c = corpus();
        let ks = knowledge(&c);
        let model = SourceLda::builder()
            .knowledge_source(ks)
            .variant(Variant::Mixture)
            .unlabeled_topics(3)
            .iterations(20)
            .build()
            .unwrap();
        assert_eq!(model.total_topics(), 5);
        let fitted = model.fit(&c).unwrap();
        assert_eq!(fitted.labels()[..3], vec![None, None, None]);
        assert_eq!(fitted.labels()[3].as_deref(), Some("School Supplies"));
    }

    #[test]
    fn full_variant_runs_with_identity_smoothing() {
        let c = corpus();
        let ks = knowledge(&c);
        let model = SourceLda::builder()
            .knowledge_source(ks)
            .variant(Variant::Full)
            .unlabeled_topics(1)
            .approximation_steps(4)
            .smoothing(SmoothingMode::Identity)
            .lambda_prior(0.7, 0.3)
            .iterations(60)
            .seed(11)
            .build()
            .unwrap();
        let fitted = model.fit(&c).unwrap();
        assert_eq!(fitted.num_topics(), 3);
        // The source topics should still attract their words.
        let school = fitted
            .labels()
            .iter()
            .position(|l| l.as_deref() == Some("School Supplies"))
            .unwrap();
        let pencil = c.vocabulary().get("pencil").unwrap().index();
        let phi_school_pencil = fitted.phi_row(school)[pencil];
        assert!(
            phi_school_pencil > 0.2,
            "School Supplies should weight pencil highly: {phi_school_pencil}"
        );
    }

    #[test]
    fn fixed_lambda_validated_and_applied() {
        let c = corpus();
        let ks = knowledge(&c);
        assert!(SourceLda::builder()
            .knowledge_source(ks.clone())
            .fixed_lambda(1.5)
            .build()
            .is_err());
        let model = SourceLda::builder()
            .knowledge_source(ks)
            .variant(Variant::Bijective)
            .fixed_lambda(0.0)
            .iterations(5)
            .build()
            .unwrap();
        // λ = 0 ⇒ flat priors; the model still runs.
        let fitted = model.fit(&c).unwrap();
        assert_eq!(fitted.num_topics(), 2);
    }

    #[test]
    fn vocabulary_mismatch_detected() {
        let c = corpus();
        let ks = knowledge(&c);
        let other = {
            let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
            b.add_tokens("d", &["completely", "different", "words", "here"]);
            b.add_tokens("e", &["and", "one", "more"]);
            b.build()
        };
        let model = SourceLda::builder()
            .knowledge_source(ks)
            .variant(Variant::Bijective)
            .iterations(5)
            .build()
            .unwrap();
        assert!(matches!(
            model.fit(&other),
            Err(crate::CoreError::VocabularyMismatch { .. })
        ));
    }
}
