//! Turning score matrices into label assignments.

use srclda_knowledge::KnowledgeSource;

/// One topic's label decision.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelAssignment {
    /// The fitted topic index.
    pub topic: usize,
    /// The chosen knowledge-source index.
    pub source_index: usize,
    /// The chosen label text.
    pub label: String,
    /// The technique's score for this pair.
    pub score: f64,
}

/// Independent argmax per topic — the paper's default ("the IR approach
/// forces all topics to a label regardless of the quality of the label").
pub fn argmax_assignments(
    scores: &[Vec<f64>],
    knowledge: &KnowledgeSource,
) -> Vec<LabelAssignment> {
    scores
        .iter()
        .enumerate()
        .map(|(topic, row)| {
            let (source_index, &score) = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty score row");
            LabelAssignment {
                topic,
                source_index,
                label: knowledge.topic(source_index).label().to_string(),
                score,
            }
        })
        .collect()
}

/// Greedy one-to-one matching: repeatedly take the globally best unassigned
/// (topic, source) pair. Useful when labels must be unique (topic count ≤
/// source count); topics left without a source get the best remaining
/// duplicate.
pub fn greedy_unique_assignments(
    scores: &[Vec<f64>],
    knowledge: &KnowledgeSource,
) -> Vec<LabelAssignment> {
    let t_count = scores.len();
    let s_count = knowledge.len();
    let mut pairs: Vec<(usize, usize, f64)> = Vec::with_capacity(t_count * s_count);
    for (t, row) in scores.iter().enumerate() {
        for (s, &score) in row.iter().enumerate() {
            pairs.push((t, s, score));
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut topic_taken = vec![false; t_count];
    let mut source_taken = vec![false; s_count];
    let mut chosen: Vec<Option<(usize, f64)>> = vec![None; t_count];
    for (t, s, score) in &pairs {
        if !topic_taken[*t] && !source_taken[*s] {
            topic_taken[*t] = true;
            source_taken[*s] = true;
            chosen[*t] = Some((*s, *score));
        }
    }
    // Any leftover topics (more topics than sources) fall back to argmax.
    chosen
        .into_iter()
        .enumerate()
        .map(|(topic, slot)| match slot {
            Some((source_index, score)) => LabelAssignment {
                topic,
                source_index,
                label: knowledge.topic(source_index).label().to_string(),
                score,
            },
            None => {
                let row = &scores[topic];
                let (source_index, &score) = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("non-empty score row");
                LabelAssignment {
                    topic,
                    source_index,
                    label: knowledge.topic(source_index).label().to_string(),
                    score,
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_knowledge::SourceTopic;

    fn ks() -> KnowledgeSource {
        KnowledgeSource::new(vec![
            SourceTopic::new("A", vec![1.0, 0.0]),
            SourceTopic::new("B", vec![0.0, 1.0]),
        ])
    }

    #[test]
    fn argmax_picks_best_per_topic() {
        let scores = vec![vec![0.9, 0.1], vec![0.8, 0.2]];
        let out = argmax_assignments(&scores, &ks());
        assert_eq!(out[0].label, "A");
        assert_eq!(out[1].label, "A", "argmax allows duplicates");
        assert_eq!(out[0].score, 0.9);
    }

    #[test]
    fn greedy_forces_uniqueness() {
        // Both topics prefer A, but topic 0 prefers it more strongly.
        let scores = vec![vec![0.9, 0.1], vec![0.8, 0.2]];
        let out = greedy_unique_assignments(&scores, &ks());
        assert_eq!(out[0].label, "A");
        assert_eq!(out[1].label, "B");
    }

    #[test]
    fn greedy_with_more_topics_than_sources_falls_back() {
        let scores = vec![vec![0.9, 0.1], vec![0.8, 0.2], vec![0.7, 0.6]];
        let out = greedy_unique_assignments(&scores, &ks());
        assert_eq!(out.len(), 3);
        // Third topic reuses some label rather than being dropped.
        assert!(!out[2].label.is_empty());
    }
}
