//! PMI-based labeling: score a (topic, source) pair by the mean pointwise
//! mutual information — measured in the modeled corpus — between the
//! topic's top words and the article's top words.

use crate::{top_word_ids, LabelingContext, TopicLabeler};
use srclda_corpus::{CooccurrenceCounts, WordId};
use srclda_math::FxHashSet;

/// PMI labeler with a configurable co-occurrence window.
#[derive(Debug, Clone, Copy)]
pub struct PmiLabeler {
    /// Sliding-window width for co-occurrence counting.
    pub window: usize,
}

impl Default for PmiLabeler {
    fn default() -> Self {
        Self { window: 10 }
    }
}

impl TopicLabeler for PmiLabeler {
    fn name(&self) -> &'static str {
        "PMI"
    }

    fn score_matrix(&self, phi_rows: &[Vec<f64>], ctx: &LabelingContext<'_>) -> Vec<Vec<f64>> {
        // Interesting words: every topic's top-n plus every article's top-n.
        let mut interesting: FxHashSet<WordId> = FxHashSet::default();
        let mut topic_tops: Vec<Vec<WordId>> = Vec::with_capacity(phi_rows.len());
        for phi_t in phi_rows {
            let tops: Vec<WordId> = top_word_ids(phi_t, ctx.top_n)
                .into_iter()
                .map(WordId::new)
                .collect();
            interesting.extend(tops.iter().copied());
            topic_tops.push(tops);
        }
        let article_tops: Vec<Vec<WordId>> = ctx
            .knowledge
            .topics()
            .iter()
            .map(|t| t.top_words(ctx.top_n))
            .collect();
        for tops in &article_tops {
            interesting.extend(tops.iter().copied());
        }
        let counts = CooccurrenceCounts::count(ctx.corpus, &interesting, self.window);
        topic_tops
            .iter()
            .map(|t_tops| {
                article_tops
                    .iter()
                    .map(|a_tops| {
                        let mut acc = 0.0;
                        let mut n = 0usize;
                        for &tw in t_tops {
                            for &aw in a_tops {
                                if tw == aw {
                                    continue;
                                }
                                if let Some(p) = counts.pmi(tw, aw) {
                                    acc += p;
                                    n += 1;
                                }
                            }
                        }
                        if n == 0 {
                            f64::NEG_INFINITY
                        } else {
                            acc / n as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};
    use srclda_knowledge::KnowledgeSourceBuilder;

    #[test]
    fn corpus_cooccurrence_drives_labels() {
        // Corpus where "gas" co-occurs with "pipeline" and "stock" with
        // "market".
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..20 {
            b.add_tokens("g", &["gas", "pipeline", "gas", "pipeline"]);
            b.add_tokens("s", &["stock", "market", "stock", "market"]);
        }
        let corpus = b.build();
        let mut ksb = KnowledgeSourceBuilder::new();
        ksb.add_counts("Energy", vec![("pipeline".into(), 10.0)]);
        ksb.add_counts("Finance", vec![("market".into(), 10.0)]);
        let ks = ksb.build(corpus.vocabulary());
        let v = corpus.vocab_size();
        let gas = corpus.vocabulary().get("gas").unwrap().index();
        let stock = corpus.vocabulary().get("stock").unwrap().index();
        let mut gas_topic = vec![1e-9; v];
        gas_topic[gas] = 1.0;
        let mut stock_topic = vec![1e-9; v];
        stock_topic[stock] = 1.0;
        let mut ctx = LabelingContext::new(&ks, &corpus);
        ctx.top_n = 1;
        let labels = PmiLabeler::default().label(&[gas_topic, stock_topic], &ctx);
        assert_eq!(labels[0].label, "Energy");
        assert_eq!(labels[1].label, "Finance");
    }

    #[test]
    fn no_scorable_pairs_scores_neg_infinity() {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        b.add_tokens("d", &["alpha", "beta"]);
        let corpus = b.build();
        let mut ksb = KnowledgeSourceBuilder::new();
        ksb.add_counts("Empty", vec![("nothing".into(), 1.0)]);
        let ks = ksb.build(corpus.vocabulary());
        let ctx = LabelingContext::new(&ks, &corpus);
        let uniform = vec![0.5, 0.5];
        let scores = PmiLabeler::default().score_matrix(&[uniform], &ctx);
        assert_eq!(scores[0][0], f64::NEG_INFINITY);
    }
}
