//! IR-LDA — the paper's post-hoc baseline (§IV.C): run plain LDA, then
//! label every topic via the TF-IDF/cosine-similarity retrieval step.
//!
//! "Since the IR approach forces all topics to a label regardless of the
//! quality of the label, LDA required all topics to be matched to a label."

use crate::tfidf_cs::TfIdfCosineLabeler;
use crate::{LabelAssignment, LabelingContext, TopicLabeler};
use srclda_core::{FittedModel, Lda};
use srclda_corpus::Corpus;
use srclda_knowledge::KnowledgeSource;

/// The IR-LDA pipeline: LDA fitting plus retrieval-based labeling.
#[derive(Debug, Clone)]
pub struct IrLda {
    /// The underlying LDA model.
    pub lda: Lda,
    /// Top words per topic used in the query (paper: 10).
    pub top_n: usize,
}

/// IR-LDA output: the fitted LDA model plus one label per topic.
#[derive(Debug)]
pub struct IrLdaResult {
    /// The fitted LDA model.
    pub fitted: FittedModel,
    /// Per-topic label assignments (every topic is forced to a label).
    pub labels: Vec<LabelAssignment>,
}

impl IrLda {
    /// Wrap a configured LDA model with the default 10-word queries.
    pub fn new(lda: Lda) -> Self {
        Self { lda, top_n: 10 }
    }

    /// Fit LDA and label every topic.
    ///
    /// # Errors
    /// Propagates LDA fitting errors.
    pub fn run(
        &self,
        corpus: &Corpus,
        knowledge: &KnowledgeSource,
    ) -> srclda_core::Result<IrLdaResult> {
        let fitted = self.lda.fit(corpus)?;
        let phi_rows = fitted.phi().to_rows();
        let ctx = LabelingContext {
            knowledge,
            corpus,
            top_n: self.top_n,
        };
        let labels = TfIdfCosineLabeler.label(&phi_rows, &ctx);
        Ok(IrLdaResult { fitted, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};
    use srclda_knowledge::KnowledgeSourceBuilder;

    #[test]
    fn end_to_end_labels_every_topic() {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..10 {
            b.add_tokens("g", &["gas", "pipeline", "energy", "gas"]);
            b.add_tokens("s", &["stock", "market", "fund", "stock"]);
        }
        let corpus = b.build();
        let mut ksb = KnowledgeSourceBuilder::new();
        ksb.add_article("Natural Gas", "gas gas gas pipeline pipeline energy");
        ksb.add_article("Stock Market", "stock stock market market fund");
        let ks = ksb.build(corpus.vocabulary());
        let ir = IrLda::new(
            Lda::builder()
                .topics(2)
                .alpha(0.5)
                .beta(0.1)
                .iterations(120)
                .seed(23)
                .build()
                .unwrap(),
        );
        let result = ir.run(&corpus, &ks).unwrap();
        assert_eq!(result.labels.len(), 2);
        // Both labels assigned, and the two clean topics get the two
        // distinct correct labels.
        let mut labels: Vec<&str> = result.labels.iter().map(|l| l.label.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["Natural Gas", "Stock Market"]);
    }
}
