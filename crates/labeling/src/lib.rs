//! Post-hoc topic labeling.
//!
//! The paper's §I case study compares four techniques for mapping LDA
//! topics onto knowledge-source labels *after* modeling, and §IV.C's IR-LDA
//! baseline labels LDA topics with a TF-IDF/cosine-similarity retrieval
//! step. This crate implements all of them behind one [`TopicLabeler`]
//! trait:
//!
//! * [`JsDivergenceLabeler`] — minimal Jensen–Shannon divergence between the
//!   topic's word distribution and each source distribution;
//! * [`TfIdfCosineLabeler`] — cosine similarity between TF-IDF article
//!   vectors and a TF-IDF-weighted query built from the topic's top words;
//! * [`CountingLabeler`] — total occurrences of the topic's top words in
//!   each source article;
//! * [`PmiLabeler`] — mean corpus PMI between the topic's top words and
//!   each article's top words;
//! * [`ir::IrLda`] — the complete IR-LDA pipeline (LDA + TF-IDF/CS labels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod counting;
pub mod ir;
pub mod js;
pub mod pmi;
pub mod tfidf_cs;

pub use assignment::{argmax_assignments, greedy_unique_assignments, LabelAssignment};
pub use counting::CountingLabeler;
pub use ir::IrLda;
pub use js::JsDivergenceLabeler;
pub use pmi::PmiLabeler;
pub use tfidf_cs::TfIdfCosineLabeler;

use srclda_corpus::Corpus;
use srclda_knowledge::KnowledgeSource;

/// Inputs shared by all labelers.
pub struct LabelingContext<'a> {
    /// The candidate labels with their article count vectors.
    pub knowledge: &'a KnowledgeSource,
    /// The corpus that was modeled (needed by the PMI and TF-IDF mappers).
    pub corpus: &'a Corpus,
    /// Number of top topic words the word-based mappers consider.
    pub top_n: usize,
}

impl<'a> LabelingContext<'a> {
    /// Context with the paper's default of 10 top words.
    pub fn new(knowledge: &'a KnowledgeSource, corpus: &'a Corpus) -> Self {
        Self {
            knowledge,
            corpus,
            top_n: 10,
        }
    }
}

/// A labeling technique: produces a score matrix `scores[topic][source]`
/// (higher = better match) for a set of fitted topic–word distributions.
pub trait TopicLabeler {
    /// Short technique name (for report tables).
    fn name(&self) -> &'static str;

    /// Score every (topic, source) pair.
    fn score_matrix(&self, phi_rows: &[Vec<f64>], ctx: &LabelingContext<'_>) -> Vec<Vec<f64>>;

    /// Convenience: label each topic with its best-scoring source.
    fn label(&self, phi_rows: &[Vec<f64>], ctx: &LabelingContext<'_>) -> Vec<LabelAssignment> {
        argmax_assignments(&self.score_matrix(phi_rows, ctx), ctx.knowledge)
    }

    /// Convenience: one-to-one labeling by greedy best-score matching.
    fn label_unique(
        &self,
        phi_rows: &[Vec<f64>],
        ctx: &LabelingContext<'_>,
    ) -> Vec<LabelAssignment> {
        greedy_unique_assignments(&self.score_matrix(phi_rows, ctx), ctx.knowledge)
    }
}

/// The top-`n` word indices of a topic row (shared helper).
pub(crate) fn top_word_ids(phi_t: &[f64], n: usize) -> Vec<usize> {
    srclda_math::simplex::top_n_indices(phi_t, n)
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use srclda_corpus::{Corpus, CorpusBuilder, Tokenizer};
    use srclda_knowledge::{KnowledgeSource, KnowledgeSourceBuilder};

    /// The paper's §I case-study world: school-supply and baseball articles
    /// over a corpus that mixes both themes.
    pub fn case_study() -> (Corpus, KnowledgeSource) {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        b.add_tokens("d1", &["pencil", "pencil", "umpire"]);
        b.add_tokens("d2", &["ruler", "ruler", "baseball"]);
        let corpus = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_counts(
            "School Supplies",
            vec![("pencil".into(), 40.0), ("ruler".into(), 30.0)],
        );
        ks.add_counts(
            "Baseball",
            vec![("baseball".into(), 35.0), ("umpire".into(), 25.0)],
        );
        let source = ks.build(corpus.vocabulary());
        (corpus, source)
    }

    /// A φ row concentrated on the given word indices.
    pub fn concentrated_row(v: usize, words: &[(usize, f64)]) -> Vec<f64> {
        let mut row = vec![1e-6; v];
        for &(w, p) in words {
            row[w] = p;
        }
        let s: f64 = row.iter().sum();
        row.iter_mut().for_each(|x| *x /= s);
        row
    }
}
