//! Counting-based labeling: score a (topic, source) pair by how often the
//! topic's top words occur in the source article (the "Counting" row of the
//! paper's case-study table).

use crate::{top_word_ids, LabelingContext, TopicLabeler};

/// Counts top-word occurrences in each article.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingLabeler;

impl TopicLabeler for CountingLabeler {
    fn name(&self) -> &'static str {
        "Counting"
    }

    fn score_matrix(&self, phi_rows: &[Vec<f64>], ctx: &LabelingContext<'_>) -> Vec<Vec<f64>> {
        phi_rows
            .iter()
            .map(|phi_t| {
                let tops = top_word_ids(phi_t, ctx.top_n);
                ctx.knowledge
                    .topics()
                    .iter()
                    .map(|src| tops.iter().map(|&w| src.counts()[w]).sum())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{case_study, concentrated_row};

    #[test]
    fn counts_drive_the_label() {
        let (corpus, ks) = case_study();
        let v = corpus.vocab_size();
        let ruler = corpus.vocabulary().get("ruler").unwrap().index();
        let baseball = corpus.vocabulary().get("baseball").unwrap().index();
        // top_n must not cover the whole vocabulary, or counting becomes
        // degenerate (every topic sums every article).
        let mut ctx = LabelingContext::new(&ks, &corpus);
        ctx.top_n = 1;
        let school = concentrated_row(v, &[(ruler, 0.9)]);
        let sports = concentrated_row(v, &[(baseball, 0.9)]);
        let labels = CountingLabeler.label(&[school, sports], &ctx);
        assert_eq!(labels[0].label, "School Supplies");
        assert_eq!(labels[1].label, "Baseball");
        // Scores are raw counts: "ruler" occurs 30 times in the article.
        assert_eq!(labels[0].score, 30.0);
    }

    #[test]
    fn top_n_limits_the_word_set() {
        let (corpus, ks) = case_study();
        let v = corpus.vocab_size();
        let pencil = corpus.vocabulary().get("pencil").unwrap().index();
        let baseball = corpus.vocabulary().get("baseball").unwrap().index();
        // Topic with pencil slightly ahead of baseball; top_n = 1 sees only
        // pencil.
        let mixed = concentrated_row(v, &[(pencil, 0.51), (baseball, 0.49)]);
        let mut ctx = LabelingContext::new(&ks, &corpus);
        ctx.top_n = 1;
        let labels = CountingLabeler.label(&[mixed], &ctx);
        assert_eq!(labels[0].label, "School Supplies");
    }
}
