//! Jensen–Shannon divergence labeling: the semantically closest source
//! distribution wins (used in the paper's case study and to map LDA topics
//! for the Fig. 8 accuracy evaluation).

use crate::{LabelingContext, TopicLabeler};
use srclda_math::js_divergence;

/// Labels a topic with the source whose distribution has minimal JS
/// divergence from the topic's word distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsDivergenceLabeler;

impl TopicLabeler for JsDivergenceLabeler {
    fn name(&self) -> &'static str {
        "JS Divergence"
    }

    fn score_matrix(&self, phi_rows: &[Vec<f64>], ctx: &LabelingContext<'_>) -> Vec<Vec<f64>> {
        let sources: Vec<Vec<f64>> = ctx
            .knowledge
            .topics()
            .iter()
            .map(|t| t.distribution())
            .collect();
        phi_rows
            .iter()
            .map(|phi_t| {
                sources
                    .iter()
                    .map(|src| {
                        // Negate: lower divergence = better = higher score.
                        -js_divergence(phi_t, src).unwrap_or(f64::INFINITY)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{case_study, concentrated_row};

    #[test]
    fn clean_topics_get_their_labels() {
        let (corpus, ks) = case_study();
        let v = corpus.vocab_size();
        let pencil = corpus.vocabulary().get("pencil").unwrap().index();
        let ruler = corpus.vocabulary().get("ruler").unwrap().index();
        let baseball = corpus.vocabulary().get("baseball").unwrap().index();
        let umpire = corpus.vocabulary().get("umpire").unwrap().index();
        let school_topic = concentrated_row(v, &[(pencil, 0.55), (ruler, 0.45)]);
        let sports_topic = concentrated_row(v, &[(baseball, 0.6), (umpire, 0.4)]);
        let ctx = LabelingContext::new(&ks, &corpus);
        let labels = JsDivergenceLabeler.label(&[school_topic, sports_topic], &ctx);
        assert_eq!(labels[0].label, "School Supplies");
        assert_eq!(labels[1].label, "Baseball");
    }

    #[test]
    fn mixed_topic_prefers_dominant_theme() {
        let (corpus, ks) = case_study();
        let v = corpus.vocab_size();
        let pencil = corpus.vocabulary().get("pencil").unwrap().index();
        let baseball = corpus.vocabulary().get("baseball").unwrap().index();
        // 80% baseball mass.
        let mixed = concentrated_row(v, &[(pencil, 0.2), (baseball, 0.8)]);
        let ctx = LabelingContext::new(&ks, &corpus);
        let labels = JsDivergenceLabeler.label(&[mixed], &ctx);
        assert_eq!(labels[0].label, "Baseball");
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(JsDivergenceLabeler.name(), "JS Divergence");
    }
}
