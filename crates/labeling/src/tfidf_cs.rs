//! TF-IDF / cosine-similarity labeling — the information-retrieval mapper
//! behind IR-LDA (§IV.C): "cosine similarity of documents mapped to term
//! frequency-inverse document frequency (TF-IDF) vectors with TF-IDF
//! weighted query vectors formed from the top 10 words per topic".
//!
//! The knowledge-source articles play the role of the document collection;
//! IDF weights are fitted over them, each article becomes a TF-IDF vector,
//! and each topic's top-`n` words (weighted by their topic probabilities)
//! become the query.

use crate::{top_word_ids, LabelingContext, TopicLabeler};
use srclda_corpus::{cosine_similarity, SparseVector, WordId};

/// TF-IDF cosine-similarity labeler.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfIdfCosineLabeler;

/// Smoothed IDF over the knowledge-source articles:
/// `idf(w) = ln((1 + S) / (1 + df(w))) + 1` with `df` counted over articles.
fn article_idf(ctx: &LabelingContext<'_>) -> Vec<f64> {
    let v = ctx.knowledge.vocab_size();
    let s = ctx.knowledge.len() as f64;
    let mut df = vec![0u32; v];
    for topic in ctx.knowledge.topics() {
        for (w, &c) in topic.counts().iter().enumerate() {
            if c > 0.0 {
                df[w] += 1;
            }
        }
    }
    df.into_iter()
        .map(|d| ((1.0 + s) / (1.0 + d as f64)).ln() + 1.0)
        .collect()
}

impl TopicLabeler for TfIdfCosineLabeler {
    fn name(&self) -> &'static str {
        "TF-IDF/CS"
    }

    fn score_matrix(&self, phi_rows: &[Vec<f64>], ctx: &LabelingContext<'_>) -> Vec<Vec<f64>> {
        let idf = article_idf(ctx);
        // Article vectors: tf × idf.
        let articles: Vec<SparseVector> = ctx
            .knowledge
            .topics()
            .iter()
            .map(|t| {
                SparseVector::from_pairs(
                    t.counts()
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0.0)
                        .map(|(w, &c)| (WordId::new(w), c * idf[w]))
                        .collect(),
                )
            })
            .collect();
        phi_rows
            .iter()
            .map(|phi_t| {
                let query = SparseVector::from_pairs(
                    top_word_ids(phi_t, ctx.top_n)
                        .into_iter()
                        .map(|w| {
                            (
                                WordId::new(w),
                                phi_t[w] * idf.get(w).copied().unwrap_or(1.0),
                            )
                        })
                        .collect(),
                );
                articles
                    .iter()
                    .map(|a| cosine_similarity(&query, a))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{case_study, concentrated_row};

    #[test]
    fn labels_match_dominant_words() {
        let (corpus, ks) = case_study();
        let v = corpus.vocab_size();
        let pencil = corpus.vocabulary().get("pencil").unwrap().index();
        let umpire = corpus.vocabulary().get("umpire").unwrap().index();
        let ctx = LabelingContext::new(&ks, &corpus);
        let school = concentrated_row(v, &[(pencil, 0.9)]);
        let sports = concentrated_row(v, &[(umpire, 0.9)]);
        let labels = TfIdfCosineLabeler.label(&[school, sports], &ctx);
        assert_eq!(labels[0].label, "School Supplies");
        assert_eq!(labels[1].label, "Baseball");
        assert!(labels[0].score > 0.0);
    }

    #[test]
    fn disjoint_topic_scores_zero() {
        let (corpus, ks) = case_study();
        let v = corpus.vocab_size();
        let ctx = LabelingContext::new(&ks, &corpus);
        // A topic concentrated on a word no article contains cannot match.
        let mut row = vec![0.0; v];
        row[0] = 1.0; // "pencil" — actually in an article; use uniform junk
        let uniform = vec![1.0 / v as f64; v];
        let scores = TfIdfCosineLabeler.score_matrix(&[uniform], &ctx);
        // Uniform topic still scores something (overlap exists) — just
        // verify the matrix shape and score bounds.
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].len(), 2);
        for &s in &scores[0] {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn idf_downweights_ubiquitous_words() {
        let (corpus, ks) = case_study();
        let ctx = LabelingContext::new(&ks, &corpus);
        let idf = article_idf(&ctx);
        // "pencil" appears in one of two articles ⇒ higher idf than a word
        // appearing in both (none here), lower than a word in neither.
        let pencil = corpus.vocabulary().get("pencil").unwrap().index();
        // Unseen word: df = 0.
        let unseen_idf = ((1.0 + 2.0f64) / 1.0).ln() + 1.0;
        assert!(idf[pencil] < unseen_idf);
    }
}
