//! Regression tests pinning the corpus pipeline's output bytes.
//!
//! The `srclda-lint` hash-iteration rule forbids iterating hash containers
//! in this crate because the pipeline's output feeds seeded training: if
//! bag-of-words entry order ever depended on hash-bucket layout, the same
//! corpus would train to different bits on different runs or stdlib
//! versions. These tests serialize the full pipeline output (vocabulary,
//! per-document bags, corpus counts) and compare an FNV-1a digest against
//! a constant pinned at the time the BTreeMap-backed implementation
//! landed. Any process run — today's or a future one — must reproduce the
//! digest exactly, which is what "byte-identical across two process runs"
//! means in a form a single-process test can enforce forever.

use srclda_corpus::{BagOfWords, CorpusBuilder, Tokenizer, WordId};

/// FNV-1a 64-bit, locally defined so this test has no dependency on the
/// serving crate's codec.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A small but non-trivial corpus: repeated words, cross-document overlap,
/// stopwords, mixed case, punctuation.
fn build_corpus() -> srclda_corpus::Corpus {
    let texts = [
        (
            "umpires",
            "The umpire calls the strike; the batter argues the call.",
        ),
        (
            "pencils",
            "A pencil and a ruler and a pencil again, sharpened twice.",
        ),
        (
            "mixed",
            "Umpire with pencil: the scorekeeper writes the strike down.",
        ),
        ("empty-after-stopwords", "and the of a an"),
    ];
    let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    for (name, text) in texts {
        b.add_text(name, text);
    }
    b.build()
}

/// Serialize everything order-sensitive the pipeline produces.
fn pipeline_bytes() -> Vec<u8> {
    let corpus = build_corpus();
    let mut out = Vec::new();
    for (id, word) in corpus.vocabulary().iter() {
        out.extend_from_slice(&id.0.to_le_bytes());
        out.extend_from_slice(word.as_bytes());
        out.push(0);
    }
    for (_, doc) in corpus.iter() {
        let bow = BagOfWords::from_document(doc);
        for &(w, c) in bow.entries() {
            out.extend_from_slice(&w.0.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.push(0xff);
    }
    let counts = srclda_corpus::CorpusCounts::from_corpus(&corpus);
    for w in 0..corpus.vocab_size() {
        out.extend_from_slice(&counts.word_count(WordId::new(w)).to_le_bytes());
        out.extend_from_slice(&counts.doc_freq(WordId::new(w)).to_le_bytes());
    }
    out
}

#[test]
fn bag_of_words_entries_are_word_id_sorted() {
    let corpus = build_corpus();
    for (_, doc) in corpus.iter() {
        let bow = BagOfWords::from_document(doc);
        let ids: Vec<u32> = bow.entries().iter().map(|&(w, _)| w.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "entries must come out WordId-sorted");
        assert_eq!(
            bow.total(),
            bow.entries().iter().map(|&(_, c)| c).sum::<u32>()
        );
    }
}

#[test]
fn pipeline_output_is_identical_across_rebuilds() {
    // Two full rebuilds inside one process: fresh allocations, fresh hash
    // maps, same bytes.
    assert_eq!(pipeline_bytes(), pipeline_bytes());
}

#[test]
fn pipeline_digest_matches_pinned_constant() {
    // Pinned when bag-of-words counting moved to BTreeMap. A mismatch
    // means some stage's output order regressed to hash-layout dependence
    // (or the tokenizer/vocab semantics changed — bump deliberately then).
    const PINNED: u64 = 0xFD4F_03FB_2D1E_3996;
    assert_eq!(fnv1a64(&pipeline_bytes()), PINNED);
}
