//! TF-IDF vectors and cosine similarity.
//!
//! The paper's IR-LDA baseline (§IV.C) labels LDA topics by "cosine
//! similarity of documents mapped to term frequency-inverse document
//! frequency (TF-IDF) vectors with TF-IDF weighted query vectors formed from
//! the top 10 words per topic". This module supplies that machinery.

use crate::bow::BagOfWords;
use crate::corpus::Corpus;
use crate::document::Document;
use crate::token::WordId;

/// A sparse vector sorted by [`WordId`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    entries: Vec<(WordId, f64)>,
    norm: f64,
}

impl SparseVector {
    /// Build from unsorted `(word, weight)` pairs; duplicate words are
    /// summed, zero weights dropped.
    pub fn from_pairs(mut pairs: Vec<(WordId, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(w, _)| w);
        let mut entries: Vec<(WordId, f64)> = Vec::with_capacity(pairs.len());
        for (w, x) in pairs {
            if x == 0.0 {
                continue;
            }
            match entries.last_mut() {
                Some((lw, lx)) if *lw == w => *lx += x,
                _ => entries.push((w, x)),
            }
        }
        let norm = entries.iter().map(|&(_, x)| x * x).sum::<f64>().sqrt();
        Self { entries, norm }
    }

    /// The entries, sorted by word id.
    pub fn entries(&self) -> &[(WordId, f64)] {
        &self.entries
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff there are no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dot product with another sparse vector (merge join).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

/// Cosine similarity between two sparse vectors (0 if either is zero).
pub fn cosine_similarity(a: &SparseVector, b: &SparseVector) -> f64 {
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        0.0
    } else {
        (a.dot(b) / denom).clamp(-1.0, 1.0)
    }
}

/// A fitted TF-IDF weighting: per-word inverse document frequency.
///
/// Uses the smoothed convention `idf(w) = ln((1 + D) / (1 + df(w))) + 1`, so
/// unseen words still receive a positive weight in query vectors.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    idf: Vec<f64>,
}

impl TfIdfModel {
    /// Fit IDF weights over a corpus.
    pub fn fit(corpus: &Corpus) -> Self {
        let counts = crate::bow::CorpusCounts::from_corpus(corpus);
        let d = corpus.num_docs() as f64;
        let idf = (0..corpus.vocab_size())
            .map(|w| ((1.0 + d) / (1.0 + counts.doc_freq(WordId::new(w)) as f64)).ln() + 1.0)
            .collect();
        Self { idf }
    }

    /// IDF weight of a word (1.0 for ids beyond the fitted vocabulary,
    /// matching the smoothed-unseen convention).
    pub fn idf(&self, w: WordId) -> f64 {
        self.idf.get(w.index()).copied().unwrap_or(1.0)
    }

    /// TF-IDF vector of a document (raw term frequency × idf).
    pub fn vector(&self, doc: &Document) -> SparseVector {
        let bow = BagOfWords::from_document(doc);
        self.vector_from_bow(&bow)
    }

    /// TF-IDF vector from precomputed counts.
    pub fn vector_from_bow(&self, bow: &BagOfWords) -> SparseVector {
        SparseVector::from_pairs(
            bow.entries()
                .iter()
                .map(|&(w, c)| (w, c as f64 * self.idf(w)))
                .collect(),
        )
    }

    /// TF-IDF weighted query vector from `(word, weight)` pairs — the
    /// "top-10 words per topic" query of IR-LDA uses the topic's word
    /// probabilities as weights.
    pub fn query(&self, weighted_words: &[(WordId, f64)]) -> SparseVector {
        SparseVector::from_pairs(
            weighted_words
                .iter()
                .map(|&(w, x)| (w, x * self.idf(w)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::tokenizer::Tokenizer;
    use crate::DocId;

    fn build() -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        b.add_tokens("d1", &["gas", "gas", "pipeline", "energy"]);
        b.add_tokens("d2", &["stock", "market", "energy"]);
        b.add_tokens("d3", &["gas", "stock"]);
        b.build()
    }

    #[test]
    fn sparse_vector_dedupes_and_sorts() {
        let v = SparseVector::from_pairs(vec![
            (WordId::new(3), 1.0),
            (WordId::new(1), 2.0),
            (WordId::new(3), 1.0),
            (WordId::new(2), 0.0),
        ]);
        assert_eq!(v.entries(), &[(WordId::new(1), 2.0), (WordId::new(3), 2.0)]);
        assert!((v.norm() - (8.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dot_product_merge_join() {
        let a = SparseVector::from_pairs(vec![(WordId::new(0), 1.0), (WordId::new(2), 2.0)]);
        let b = SparseVector::from_pairs(vec![(WordId::new(2), 3.0), (WordId::new(5), 1.0)]);
        assert_eq!(a.dot(&b), 6.0);
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let a = SparseVector::from_pairs(vec![(WordId::new(0), 1.0), (WordId::new(1), 1.0)]);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let zero = SparseVector::default();
        assert_eq!(cosine_similarity(&a, &zero), 0.0);
        let orth = SparseVector::from_pairs(vec![(WordId::new(2), 5.0)]);
        assert_eq!(cosine_similarity(&a, &orth), 0.0);
    }

    #[test]
    fn idf_orders_rarity() {
        let c = build();
        let m = TfIdfModel::fit(&c);
        let gas = c.vocabulary().get("gas").unwrap();
        let pipeline = c.vocabulary().get("pipeline").unwrap();
        // "pipeline" appears in 1 doc, "gas" in 2 ⇒ idf(pipeline) > idf(gas).
        assert!(m.idf(pipeline) > m.idf(gas));
        // Unseen id falls back to 1.0.
        assert_eq!(m.idf(WordId::new(999)), 1.0);
    }

    #[test]
    fn document_similarity_reflects_overlap() {
        let c = build();
        let m = TfIdfModel::fit(&c);
        let v1 = m.vector(c.doc(DocId::new(0)));
        let v2 = m.vector(c.doc(DocId::new(1)));
        let v3 = m.vector(c.doc(DocId::new(2)));
        // d3 shares "gas" with d1 and "stock" with d2; d1 vs d2 share only
        // "energy".
        let s13 = cosine_similarity(&v1, &v3);
        let s12 = cosine_similarity(&v1, &v2);
        assert!(s13 > s12, "{s13} vs {s12}");
    }

    #[test]
    fn query_vector_weighting() {
        let c = build();
        let m = TfIdfModel::fit(&c);
        let gas = c.vocabulary().get("gas").unwrap();
        let q = m.query(&[(gas, 0.9)]);
        assert_eq!(q.len(), 1);
        assert!((q.entries()[0].1 - 0.9 * m.idf(gas)).abs() < 1e-12);
    }
}
