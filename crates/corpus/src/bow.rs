//! Sparse bag-of-words count vectors, per document and corpus-wide.

use std::collections::BTreeMap;

use crate::corpus::Corpus;
use crate::document::Document;
use crate::token::WordId;

/// Sparse per-document counts, sorted by [`WordId`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BagOfWords {
    entries: Vec<(WordId, u32)>,
    total: u32,
}

impl BagOfWords {
    /// Count the tokens of a document.
    pub fn from_document(doc: &Document) -> Self {
        Self::from_tokens(doc.tokens())
    }

    /// Count an arbitrary token slice.
    pub fn from_tokens(tokens: &[WordId]) -> Self {
        // BTreeMap, not FxHashMap: its iteration order is the sort order,
        // so the entries come out WordId-sorted with no post-pass and no
        // dependence on hash-bucket layout.
        let mut map: BTreeMap<WordId, u32> = BTreeMap::new();
        for &w in tokens {
            *map.entry(w).or_insert(0) += 1;
        }
        let entries: Vec<(WordId, u32)> = map.into_iter().collect();
        let total = entries.iter().map(|&(_, c)| c).sum();
        Self { entries, total }
    }

    /// Sparse `(word, count)` entries sorted by word id.
    pub fn entries(&self) -> &[(WordId, u32)] {
        &self.entries
    }

    /// Count of a specific word (0 if absent).
    pub fn count(&self, w: WordId) -> u32 {
        self.entries
            .binary_search_by_key(&w, |&(word, _)| word)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Total token count.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of distinct words.
    pub fn num_distinct(&self) -> usize {
        self.entries.len()
    }

    /// Densify to a length-`v` count vector.
    pub fn to_dense(&self, v: usize) -> Vec<f64> {
        let mut out = vec![0.0; v];
        for &(w, c) in &self.entries {
            if w.index() < v {
                out[w.index()] = c as f64;
            }
        }
        out
    }
}

/// Corpus-level aggregates: global word counts and document frequencies.
#[derive(Debug, Clone)]
pub struct CorpusCounts {
    word_counts: Vec<u64>,
    doc_freq: Vec<u32>,
    num_docs: usize,
    total_tokens: u64,
}

impl CorpusCounts {
    /// Scan the corpus once, accumulating counts.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let v = corpus.vocab_size();
        let mut word_counts = vec![0u64; v];
        let mut doc_freq = vec![0u32; v];
        let mut seen = vec![usize::MAX; v];
        let mut total_tokens = 0u64;
        for (d, doc) in corpus.iter() {
            for &w in doc.tokens() {
                word_counts[w.index()] += 1;
                total_tokens += 1;
                if seen[w.index()] != d.index() {
                    seen[w.index()] = d.index();
                    doc_freq[w.index()] += 1;
                }
            }
        }
        Self {
            word_counts,
            doc_freq,
            num_docs: corpus.num_docs(),
            total_tokens,
        }
    }

    /// Corpus-wide count of a word.
    pub fn word_count(&self, w: WordId) -> u64 {
        self.word_counts[w.index()]
    }

    /// Number of documents containing a word.
    pub fn doc_freq(&self, w: WordId) -> u32 {
        self.doc_freq[w.index()]
    }

    /// Total number of tokens in the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// The `n` most frequent words, descending.
    pub fn top_words(&self, n: usize) -> Vec<WordId> {
        let mut idx: Vec<usize> = (0..self.word_counts.len()).collect();
        idx.sort_by(|&a, &b| {
            self.word_counts[b]
                .cmp(&self.word_counts[a])
                .then(a.cmp(&b))
        });
        idx.truncate(n);
        idx.into_iter().map(WordId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::tokenizer::Tokenizer;

    fn build() -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        b.add_tokens("d1", &["pencil", "pencil", "umpire"]);
        b.add_tokens("d2", &["ruler", "ruler", "baseball", "pencil"]);
        b.build()
    }

    #[test]
    fn bow_counts() {
        let c = build();
        let bow = BagOfWords::from_document(c.doc(crate::DocId::new(0)));
        let pencil = c.vocabulary().get("pencil").unwrap();
        let umpire = c.vocabulary().get("umpire").unwrap();
        assert_eq!(bow.count(pencil), 2);
        assert_eq!(bow.count(umpire), 1);
        assert_eq!(bow.count(WordId::new(99)), 0);
        assert_eq!(bow.total(), 3);
        assert_eq!(bow.num_distinct(), 2);
    }

    #[test]
    fn bow_entries_sorted() {
        let bow = BagOfWords::from_tokens(&[WordId::new(5), WordId::new(1), WordId::new(5)]);
        assert_eq!(bow.entries(), &[(WordId::new(1), 1), (WordId::new(5), 2)]);
    }

    #[test]
    fn bow_to_dense() {
        let bow = BagOfWords::from_tokens(&[WordId::new(0), WordId::new(2), WordId::new(2)]);
        assert_eq!(bow.to_dense(4), vec![1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn corpus_counts_aggregate() {
        let c = build();
        let counts = CorpusCounts::from_corpus(&c);
        let pencil = c.vocabulary().get("pencil").unwrap();
        let ruler = c.vocabulary().get("ruler").unwrap();
        assert_eq!(counts.word_count(pencil), 3);
        assert_eq!(counts.doc_freq(pencil), 2);
        assert_eq!(counts.word_count(ruler), 2);
        assert_eq!(counts.doc_freq(ruler), 1);
        assert_eq!(counts.total_tokens(), 7);
        assert_eq!(counts.num_docs(), 2);
    }

    #[test]
    fn top_words_order() {
        let c = build();
        let counts = CorpusCounts::from_corpus(&c);
        let top = counts.top_words(2);
        assert_eq!(c.vocabulary().word(top[0]), "pencil");
        assert_eq!(c.vocabulary().word(top[1]), "ruler");
        // Request more than vocab size.
        assert_eq!(counts.top_words(100).len(), c.vocab_size());
    }

    #[test]
    fn empty_document_bow() {
        let bow = BagOfWords::from_tokens(&[]);
        assert_eq!(bow.total(), 0);
        assert_eq!(bow.num_distinct(), 0);
        assert!(bow.to_dense(3).iter().all(|&x| x == 0.0));
    }
}
