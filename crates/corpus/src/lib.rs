//! Text substrate for the Source-LDA reproduction.
//!
//! The paper's pipelines consume tokenized bag-of-words corpora; this crate
//! supplies everything up to (but not including) the probabilistic models:
//!
//! * [`vocab`] — string interning into dense [`WordId`]s;
//! * [`tokenizer`] — lowercasing/splitting/filtering raw text;
//! * [`stopwords`] — an embedded English stopword list;
//! * [`document`] / [`corpus`] — token sequences and collections thereof;
//! * [`bow`] — sparse per-document and corpus-level count vectors;
//! * [`tfidf`] — TF-IDF vectors and cosine similarity (the paper's IR-LDA
//!   labeling approach, §IV.C);
//! * [`cooccur`] — sliding-window co-occurrence counts (PMI evaluation);
//! * [`split`] — deterministic train/held-out splits for perplexity;
//! * [`io`] — plain-text readers/writers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bow;
pub mod cooccur;
pub mod corpus;
pub mod document;
pub mod io;
pub mod split;
pub mod stopwords;
pub mod tfidf;
pub mod token;
pub mod tokenizer;
pub mod vocab;

pub use bow::{BagOfWords, CorpusCounts};
pub use cooccur::CooccurrenceCounts;
pub use corpus::{Corpus, CorpusBuilder};
pub use document::Document;
pub use split::train_test_split;
pub use tfidf::{cosine_similarity, SparseVector, TfIdfModel};
pub use token::{DocId, TopicId, WordId};
pub use tokenizer::Tokenizer;
pub use vocab::Vocabulary;
