//! A corpus: documents plus the vocabulary they are interned against.

use crate::document::Document;
use crate::token::{DocId, WordId};
use crate::tokenizer::Tokenizer;
use crate::vocab::Vocabulary;

/// A tokenized corpus. All documents share one [`Vocabulary`].
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    vocab: Vocabulary,
    docs: Vec<Document>,
}

impl Corpus {
    /// Assemble from parts (used by the synthetic generators, which produce
    /// `WordId` tokens directly).
    pub fn from_parts(vocab: Vocabulary, docs: Vec<Document>) -> Self {
        debug_assert!(docs
            .iter()
            .flat_map(|d| d.tokens())
            .all(|w| w.index() < vocab.len().max(1)));
        Self { vocab, docs }
    }

    /// The shared vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of documents (the paper's `D`).
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size (the paper's `V`).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Total token count across all documents.
    pub fn num_tokens(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// Average document length (the paper's `D_avg`); 0 for an empty corpus.
    pub fn avg_doc_len(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.num_tokens() as f64 / self.docs.len() as f64
        }
    }

    /// Access a document.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn doc(&self, d: DocId) -> &Document {
        &self.docs[d.index()]
    }

    /// All documents.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Iterate `(DocId, &Document)`.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, d)| (DocId::new(i), d))
    }

    /// Is the corpus empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Incremental corpus builder: feeds raw text through a [`Tokenizer`] and
/// interns tokens into a shared vocabulary.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    tokenizer: Tokenizer,
    vocab: Vocabulary,
    docs: Vec<Document>,
}

impl CorpusBuilder {
    /// New builder with the default tokenizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the tokenizer.
    pub fn tokenizer(mut self, t: Tokenizer) -> Self {
        self.tokenizer = t;
        self
    }

    /// Seed the vocabulary (e.g. to share ids with a knowledge source).
    pub fn with_vocabulary(mut self, vocab: Vocabulary) -> Self {
        self.vocab = vocab;
        self
    }

    /// Tokenize and add a named document; returns its [`DocId`].
    pub fn add_text(&mut self, name: impl Into<String>, text: &str) -> DocId {
        let tokens: Vec<WordId> = self
            .tokenizer
            .tokenize(text)
            .into_iter()
            .map(|w| self.vocab.intern(&w))
            .collect();
        let id = DocId::new(self.docs.len());
        self.docs.push(Document::named(name, tokens));
        id
    }

    /// Add a pre-tokenized document (tokens are interned).
    pub fn add_tokens<S: AsRef<str>>(&mut self, name: impl Into<String>, tokens: &[S]) -> DocId {
        let ids: Vec<WordId> = tokens
            .iter()
            .map(|w| self.vocab.intern(w.as_ref()))
            .collect();
        let id = DocId::new(self.docs.len());
        self.docs.push(Document::named(name, ids));
        id
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True iff no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Finish, producing the corpus.
    pub fn build(self) -> Corpus {
        Corpus {
            vocab: self.vocab,
            docs: self.docs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case_study_corpus() -> Corpus {
        // The corpus from the paper's §I case study.
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        b.add_tokens("d1", &["pencil", "pencil", "umpire"]);
        b.add_tokens("d2", &["ruler", "ruler", "baseball"]);
        b.build()
    }

    #[test]
    fn case_study_statistics() {
        let c = case_study_corpus();
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.vocab_size(), 4);
        assert_eq!(c.num_tokens(), 6);
        assert_eq!(c.avg_doc_len(), 3.0);
    }

    #[test]
    fn shared_vocabulary_across_documents() {
        let c = case_study_corpus();
        let pencil = c.vocabulary().get("pencil").unwrap();
        assert_eq!(c.doc(DocId::new(0)).tokens()[0], pencil);
        assert_eq!(c.doc(DocId::new(0)).tokens()[1], pencil);
    }

    #[test]
    fn builder_from_raw_text() {
        let mut b = CorpusBuilder::new();
        b.add_text("news", "The umpire called the baseball game.");
        let c = b.build();
        assert_eq!(c.num_docs(), 1);
        let words: Vec<&str> = c.vocabulary().decode(c.doc(DocId::new(0)).tokens());
        assert_eq!(words, vec!["umpire", "called", "baseball", "game"]);
    }

    #[test]
    fn empty_corpus_edge_cases() {
        let c = CorpusBuilder::new().build();
        assert!(c.is_empty());
        assert_eq!(c.avg_doc_len(), 0.0);
        assert_eq!(c.num_tokens(), 0);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let c = case_study_corpus();
        let ids: Vec<DocId> = c.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![DocId::new(0), DocId::new(1)]);
    }

    #[test]
    fn seeded_vocabulary_shares_ids() {
        let mut seed = Vocabulary::new();
        let pencil = seed.intern("pencil");
        let mut b = CorpusBuilder::new()
            .tokenizer(Tokenizer::permissive())
            .with_vocabulary(seed);
        b.add_tokens("d", &["pencil"]);
        let c = b.build();
        assert_eq!(c.doc(DocId::new(0)).tokens()[0], pencil);
    }
}
