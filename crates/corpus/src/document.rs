//! A single tokenized document.

use crate::token::WordId;

/// A document: an ordered sequence of interned tokens plus an optional name.
///
/// Token *order* matters for the PMI co-occurrence evaluation (which counts
/// pairs within a sliding window), so documents store the full sequence
/// rather than a bag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    name: Option<String>,
    tokens: Vec<WordId>,
}

impl Document {
    /// Create an anonymous document from tokens.
    pub fn new(tokens: Vec<WordId>) -> Self {
        Self { name: None, tokens }
    }

    /// Create a named document from tokens.
    pub fn named(name: impl Into<String>, tokens: Vec<WordId>) -> Self {
        Self {
            name: Some(name.into()),
            tokens,
        }
    }

    /// The document's name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The token sequence.
    pub fn tokens(&self) -> &[WordId] {
        &self.tokens
    }

    /// Number of tokens (the paper's `N_d`).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True iff the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Append a token (used by builders/generators).
    pub fn push(&mut self, w: WordId) {
        self.tokens.push(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let d = Document::named("d1", vec![WordId::new(0), WordId::new(0), WordId::new(2)]);
        assert_eq!(d.name(), Some("d1"));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.tokens()[2], WordId::new(2));
    }

    #[test]
    fn anonymous_document() {
        let d = Document::new(vec![]);
        assert_eq!(d.name(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn push_appends() {
        let mut d = Document::default();
        d.push(WordId::new(5));
        assert_eq!(d.tokens(), &[WordId::new(5)]);
    }
}
