//! An embedded English stopword list.
//!
//! The Reuters-style experiments strip function words before modeling, as is
//! standard practice for LDA pipelines. The list below is the classic
//! "long" English list (SMART-derived), trimmed to words that actually occur
//! in news/encyclopedic prose.

use srclda_math::FxHashSet;
use std::sync::OnceLock;

/// The raw stopword list.
#[rustfmt::skip]
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "also", "am", "an", "and", "any",
    "are", "aren't", "as", "at", "be", "because", "been", "before", "being", "below", "between",
    "both", "but", "by", "can", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
    "doesn't", "doing", "don't", "down", "during", "each", "few", "for", "from", "further", "had",
    "hadn't", "has", "hasn't", "have", "haven't", "having", "he", "he'd", "he'll", "he's", "her",
    "here", "here's", "hers", "herself", "him", "himself", "his", "how", "how's", "i", "i'd",
    "i'll", "i'm", "i've", "if", "in", "into", "is", "isn't", "it", "it's", "its", "itself",
    "let's", "me", "more", "most", "mustn't", "my", "myself", "no", "nor", "not", "of", "off",
    "on", "once", "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over",
    "own", "same", "shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't", "so",
    "some", "such", "than", "that", "that's", "the", "their", "theirs", "them", "themselves",
    "then", "there", "there's", "these", "they", "they'd", "they'll", "they're", "they've",
    "this", "those", "through", "to", "too", "under", "until", "up", "very", "was", "wasn't",
    "we", "we'd", "we'll", "we're", "we've", "were", "weren't", "what", "what's", "when",
    "when's", "where", "where's", "which", "while", "who", "who's", "whom", "why", "why's",
    "with", "won't", "would", "wouldn't", "you", "you'd", "you'll", "you're", "you've", "your",
    "yours", "yourself", "yourselves", "said", "says", "say", "will", "one", "two", "may",
    "many", "much", "upon", "within", "without", "however", "therefore", "thus", "since",
    "among", "between", "per", "via", "etc", "mr", "mrs", "ms",
];

fn set() -> &'static FxHashSet<&'static str> {
    static SET: OnceLock<FxHashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Is `word` (assumed lowercase) a stopword?
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_detected() {
        for w in ["the", "and", "of", "is", "said"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["pencil", "baseball", "inventory", "dollar", "gas"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn list_is_lowercase_and_duplicate_light() {
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase(), "{w} must be lowercase");
        }
        // The set dedupes; count must be close to the raw list length.
        assert!(set().len() >= STOPWORDS.len() - 2);
    }
}
