//! Plain-text corpus readers and writers.
//!
//! Two on-disk layouts are supported:
//!
//! * **one document per line** — the common LDA interchange format;
//! * **one document per `.txt` file** in a directory (file stem = name).

use crate::corpus::{Corpus, CorpusBuilder};
use crate::tokenizer::Tokenizer;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Read a corpus from a file with one document per line.
///
/// Blank lines are skipped; documents are named `line-<n>` (1-based).
///
/// # Errors
/// Propagates I/O errors.
pub fn read_lines(path: &Path, tokenizer: Tokenizer) -> io::Result<Corpus> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut builder = CorpusBuilder::new().tokenizer(tokenizer);
    let mut line = String::new();
    let mut n = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        n += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        builder.add_text(format!("line-{n}"), trimmed);
    }
    Ok(builder.build())
}

/// Read every `*.txt` file in `dir` as one document (sorted by filename for
/// determinism).
///
/// # Errors
/// Propagates I/O errors.
pub fn read_dir(dir: &Path, tokenizer: Tokenizer) -> io::Result<Corpus> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    paths.sort();
    let mut builder = CorpusBuilder::new().tokenizer(tokenizer);
    for p in paths {
        let text = fs::read_to_string(&p)?;
        let name = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_string());
        builder.add_text(name, &text);
    }
    Ok(builder.build())
}

/// Write a corpus as one document per line (tokens space-separated).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_lines(corpus: &Corpus, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    for (_, doc) in corpus.iter() {
        let mut first = true;
        for &w in doc.tokens() {
            if !first {
                out.write_all(b" ")?;
            }
            out.write_all(corpus.vocabulary().word(w).as_bytes())?;
            first = false;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("srclda-io-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn line_round_trip() {
        let dir = tempdir("lines");
        let path = dir.join("corpus.txt");
        fs::write(&path, "pencil pencil umpire\n\nruler ruler baseball\n").unwrap();
        let c = read_lines(&path, Tokenizer::permissive()).unwrap();
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.num_tokens(), 6);
        // Write back and re-read: token streams must match.
        let out = dir.join("round.txt");
        write_lines(&c, &out).unwrap();
        let c2 = read_lines(&out, Tokenizer::permissive()).unwrap();
        assert_eq!(c2.num_docs(), 2);
        for ((_, d1), (_, d2)) in c.iter().zip(c2.iter()) {
            assert_eq!(
                c.vocabulary().decode(d1.tokens()),
                c2.vocabulary().decode(d2.tokens())
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_reader_sorts_and_names() {
        let dir = tempdir("dir");
        fs::write(dir.join("b.txt"), "ruler baseball").unwrap();
        fs::write(dir.join("a.txt"), "pencil umpire").unwrap();
        fs::write(dir.join("ignore.md"), "not text").unwrap();
        let c = read_dir(&dir, Tokenizer::permissive()).unwrap();
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.docs()[0].name(), Some("a"));
        assert_eq!(c.docs()[1].name(), Some("b"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        let err = read_lines(Path::new("/nonexistent/corpus.txt"), Tokenizer::default());
        assert!(err.is_err());
    }
}
