//! Deterministic train/held-out splits (used by perplexity evaluation).

use crate::corpus::Corpus;
use crate::document::Document;
use rand::seq::SliceRandom;
use srclda_math::rng_from_seed;

/// Split a corpus into `(train, test)` with `test_fraction` of the documents
/// held out. Both halves share the original vocabulary. Deterministic in
/// `seed`.
///
/// `test_fraction` is clamped to `[0, 1]`; at least one document stays in
/// the training set when the corpus is non-empty.
pub fn train_test_split(corpus: &Corpus, test_fraction: f64, seed: u64) -> (Corpus, Corpus) {
    let n = corpus.num_docs();
    let frac = test_fraction.clamp(0.0, 1.0);
    let mut test_count = (n as f64 * frac).round() as usize;
    if n > 0 && test_count >= n {
        test_count = n - 1;
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rng_from_seed(seed);
    order.shuffle(&mut rng);
    let test_idx: std::collections::BTreeSet<usize> = order[..test_count].iter().copied().collect();
    let mut train_docs: Vec<Document> = Vec::with_capacity(n - test_count);
    let mut test_docs: Vec<Document> = Vec::with_capacity(test_count);
    for (i, doc) in corpus.docs().iter().enumerate() {
        if test_idx.contains(&i) {
            test_docs.push(doc.clone());
        } else {
            train_docs.push(doc.clone());
        }
    }
    (
        Corpus::from_parts(corpus.vocabulary().clone(), train_docs),
        Corpus::from_parts(corpus.vocabulary().clone(), test_docs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::tokenizer::Tokenizer;

    fn build(n: usize) -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for i in 0..n {
            b.add_tokens(format!("d{i}"), &["w", "x"]);
        }
        b.build()
    }

    #[test]
    fn sizes_add_up() {
        let c = build(10);
        let (train, test) = train_test_split(&c, 0.3, 1);
        assert_eq!(train.num_docs(), 7);
        assert_eq!(test.num_docs(), 3);
        assert_eq!(train.vocab_size(), c.vocab_size());
    }

    #[test]
    fn deterministic_in_seed() {
        let c = build(20);
        let (a1, b1) = train_test_split(&c, 0.5, 7);
        let (a2, b2) = train_test_split(&c, 0.5, 7);
        let names = |c: &Corpus| -> Vec<String> {
            c.docs()
                .iter()
                .filter_map(|d| d.name().map(String::from))
                .collect()
        };
        assert_eq!(names(&a1), names(&a2));
        assert_eq!(names(&b1), names(&b2));
        // Different seed gives a different split (with high probability).
        let (a3, _) = train_test_split(&c, 0.5, 8);
        assert_ne!(names(&a1), names(&a3));
    }

    #[test]
    fn never_empties_training_set() {
        let c = build(3);
        let (train, test) = train_test_split(&c, 1.0, 1);
        assert_eq!(train.num_docs(), 1);
        assert_eq!(test.num_docs(), 2);
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let c = build(5);
        let (train, test) = train_test_split(&c, 0.0, 1);
        assert_eq!(train.num_docs(), 5);
        assert_eq!(test.num_docs(), 0);
    }

    #[test]
    fn empty_corpus() {
        let c = build(0);
        let (train, test) = train_test_split(&c, 0.5, 1);
        assert_eq!(train.num_docs(), 0);
        assert_eq!(test.num_docs(), 0);
    }
}
