//! Dense integer identifiers for words, topics, and documents.
//!
//! `u32` keeps the hot count matrices half the size of `usize` indices (see
//! the type-size guidance in the performance guide); all three newtypes
//! coerce to `usize` at use sites via [`WordId::index`] etc.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub fn new(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize);
                Self(raw as u32)
            }

            /// The identifier as a `usize` array index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self::new(raw)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an interned vocabulary word.
    WordId,
    "w"
);
id_type!(
    /// Identifier of a topic (unlabeled or knowledge-source).
    TopicId,
    "t"
);
id_type!(
    /// Identifier of a document within a corpus.
    DocId,
    "d"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let w = WordId::new(42);
        assert_eq!(w.index(), 42);
        assert_eq!(usize::from(w), 42);
        assert_eq!(WordId::from(42usize), w);
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(WordId::new(1).to_string(), "w1");
        assert_eq!(TopicId::new(2).to_string(), "t2");
        assert_eq!(DocId::new(3).to_string(), "d3");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(TopicId::new(1) < TopicId::new(2));
        assert_eq!(DocId::new(5), DocId::new(5));
    }

    #[test]
    fn usable_as_hash_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(WordId::new(7), "seven");
        assert_eq!(m[&WordId::new(7)], "seven");
    }
}
