//! Vocabulary: bidirectional interning between word strings and dense
//! [`WordId`]s.

use crate::token::WordId;
use srclda_math::FxHashMap;

/// An append-only interner mapping words to dense ids and back.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    by_word: FxHashMap<String, WordId>,
    words: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of words, interning in order.
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut v = Self::new();
        for w in words {
            v.intern(w.as_ref());
        }
        v
    }

    /// Intern a word, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.by_word.get(word) {
            return id;
        }
        let id = WordId::new(self.words.len());
        self.words.push(word.to_string());
        self.by_word.insert(word.to_string(), id);
        id
    }

    /// Look up an existing word without interning.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.by_word.get(word).copied()
    }

    /// The string for an id.
    ///
    /// # Panics
    /// Panics if the id was not produced by this vocabulary.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id.index()]
    }

    /// Number of distinct words (the paper's `V`).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True iff no words are interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterate `(WordId, &str)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (WordId::new(i), w.as_str()))
    }

    /// All words in id order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Translate a slice of ids to their strings (evaluation output).
    pub fn decode(&self, ids: &[WordId]) -> Vec<&str> {
        ids.iter().map(|&id| self.word(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("pencil");
        let b = v.intern("pencil");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a").index(), 0);
        assert_eq!(v.intern("b").index(), 1);
        assert_eq!(v.intern("a").index(), 0);
        assert_eq!(v.intern("c").index(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocabulary::new();
        v.intern("x");
        assert!(v.get("y").is_none());
        assert_eq!(v.len(), 1);
        assert_eq!(v.get("x"), Some(WordId::new(0)));
    }

    #[test]
    fn word_round_trip() {
        let mut v = Vocabulary::new();
        let id = v.intern("umpire");
        assert_eq!(v.word(id), "umpire");
    }

    #[test]
    fn from_words_and_iter() {
        let v = Vocabulary::from_words(["ruler", "baseball", "ruler"]);
        assert_eq!(v.len(), 2);
        let pairs: Vec<(WordId, &str)> = v.iter().collect();
        assert_eq!(pairs[0], (WordId::new(0), "ruler"));
        assert_eq!(pairs[1], (WordId::new(1), "baseball"));
    }

    #[test]
    fn decode_slice() {
        let v = Vocabulary::from_words(["a", "b", "c"]);
        let ids = [WordId::new(2), WordId::new(0)];
        assert_eq!(v.decode(&ids), vec!["c", "a"]);
    }

    #[test]
    fn empty_checks() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
