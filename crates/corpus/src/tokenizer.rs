//! Configurable text tokenizer.
//!
//! Splits raw text on non-alphanumeric boundaries, lowercases, drops short
//! tokens and (optionally) stopwords and pure numbers. This mirrors the
//! standard preprocessing used for the Reuters / Wikipedia experiments.

use crate::stopwords::is_stopword;

/// Tokenizer configuration. Build with [`Tokenizer::default`] and adjust.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    lowercase: bool,
    min_len: usize,
    remove_stopwords: bool,
    keep_numbers: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            lowercase: true,
            min_len: 2,
            remove_stopwords: true,
            keep_numbers: false,
        }
    }
}

impl Tokenizer {
    /// A tokenizer that performs no filtering at all (case is still folded).
    pub fn permissive() -> Self {
        Self {
            lowercase: true,
            min_len: 1,
            remove_stopwords: false,
            keep_numbers: true,
        }
    }

    /// Toggle lowercasing.
    pub fn lowercase(mut self, on: bool) -> Self {
        self.lowercase = on;
        self
    }

    /// Minimum token length to keep.
    pub fn min_len(mut self, n: usize) -> Self {
        self.min_len = n;
        self
    }

    /// Toggle stopword removal.
    pub fn remove_stopwords(mut self, on: bool) -> Self {
        self.remove_stopwords = on;
        self
    }

    /// Toggle keeping all-digit tokens.
    pub fn keep_numbers(mut self, on: bool) -> Self {
        self.keep_numbers = on;
        self
    }

    /// Rebuild from the four configuration values (deserialization — the
    /// inverse of the [`Tokenizer::to_parts`] accessor).
    pub fn from_parts(
        lowercase: bool,
        min_len: usize,
        remove_stopwords: bool,
        keep_numbers: bool,
    ) -> Self {
        Self {
            lowercase,
            min_len,
            remove_stopwords,
            keep_numbers,
        }
    }

    /// The full configuration as `(lowercase, min_len, remove_stopwords,
    /// keep_numbers)` — everything needed to persist a tokenizer so a
    /// served model preprocesses raw text exactly as training did.
    pub fn to_parts(&self) -> (bool, usize, bool, bool) {
        (
            self.lowercase,
            self.min_len,
            self.remove_stopwords,
            self.keep_numbers,
        )
    }

    /// Tokenize `text` into owned strings.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for raw in text.split(|c: char| !(c.is_alphanumeric() || c == '\'')) {
            // Trim apostrophes kept only for contraction stopwords.
            let raw = raw.trim_matches('\'');
            if raw.is_empty() {
                continue;
            }
            let token = if self.lowercase {
                raw.to_lowercase()
            } else {
                raw.to_string()
            };
            if token.chars().count() < self.min_len {
                continue;
            }
            if !self.keep_numbers && token.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            if self.remove_stopwords && is_stopword(&token) {
                continue;
            }
            out.push(token);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline() {
        let t = Tokenizer::default();
        let tokens = t.tokenize("The umpire saw 3 baseballs, and the Pencil!");
        assert_eq!(tokens, vec!["umpire", "saw", "baseballs", "pencil"]);
    }

    #[test]
    fn permissive_keeps_everything() {
        let t = Tokenizer::permissive();
        let tokens = t.tokenize("The 3 pencils");
        assert_eq!(tokens, vec!["the", "3", "pencils"]);
    }

    #[test]
    fn min_len_filter() {
        let t = Tokenizer::default().min_len(6).remove_stopwords(false);
        let tokens = t.tokenize("short but baseball inventory");
        assert_eq!(tokens, vec!["baseball", "inventory"]);
    }

    #[test]
    fn contractions_are_stopwords() {
        let t = Tokenizer::default();
        let tokens = t.tokenize("don't you think it's working");
        assert_eq!(tokens, vec!["think", "working"]);
    }

    #[test]
    fn case_preservation_option() {
        let t = Tokenizer::default()
            .lowercase(false)
            .remove_stopwords(false);
        let tokens = t.tokenize("Hong Kong Dollar");
        assert_eq!(tokens, vec!["Hong", "Kong", "Dollar"]);
    }

    #[test]
    fn unicode_boundaries() {
        let t = Tokenizer::default().min_len(1).remove_stopwords(false);
        let tokens = t.tokenize("naïve—approach");
        assert_eq!(tokens, vec!["naïve", "approach"]);
    }

    #[test]
    fn empty_input() {
        assert!(Tokenizer::default().tokenize("").is_empty());
        assert!(Tokenizer::default().tokenize("  ,,, !!!").is_empty());
    }

    #[test]
    fn parts_round_trip() {
        let t = Tokenizer::default()
            .lowercase(false)
            .min_len(4)
            .remove_stopwords(false)
            .keep_numbers(true);
        let (lc, ml, rs, kn) = t.to_parts();
        assert_eq!((lc, ml, rs, kn), (false, 4, false, true));
        let back = Tokenizer::from_parts(lc, ml, rs, kn);
        let text = "The Umpire saw 1234 baseballs fly";
        assert_eq!(t.tokenize(text), back.tokenize(text));
        assert_eq!(back.to_parts(), t.to_parts());
    }
}
