//! Sliding-window co-occurrence counting for PMI.
//!
//! The paper evaluates learned topics with pointwise mutual information:
//! "takes as input a subset of the most popular tokens comprising a topic
//! and determines the frequency of all pairs in the subset occurring at a
//! given input distance from each other in the corpus" (§IV.D). This module
//! counts those pair frequencies in a single corpus pass.

use crate::corpus::Corpus;
use crate::token::WordId;
use srclda_math::{FxHashMap, FxHashSet};

/// Pair and singleton occurrence counts restricted to a word set.
#[derive(Debug, Clone)]
pub struct CooccurrenceCounts {
    window: usize,
    word_occurrences: FxHashMap<WordId, u64>,
    pair_occurrences: FxHashMap<(WordId, WordId), u64>,
    total_tokens: u64,
}

impl CooccurrenceCounts {
    /// Count occurrences of `words` and of unordered pairs of `words`
    /// appearing within `window` positions of each other.
    ///
    /// Counting convention: each token position of an interesting word
    /// counts one occurrence; each unordered pair of positions `(i, j)` with
    /// `0 < j − i ≤ window` counts one co-occurrence.
    pub fn count(corpus: &Corpus, words: &FxHashSet<WordId>, window: usize) -> Self {
        let window = window.max(1);
        let mut word_occurrences: FxHashMap<WordId, u64> = FxHashMap::default();
        let mut pair_occurrences: FxHashMap<(WordId, WordId), u64> = FxHashMap::default();
        let mut total_tokens = 0u64;
        for (_, doc) in corpus.iter() {
            let tokens = doc.tokens();
            total_tokens += tokens.len() as u64;
            for (i, &w) in tokens.iter().enumerate() {
                if !words.contains(&w) {
                    continue;
                }
                *word_occurrences.entry(w).or_insert(0) += 1;
                let end = (i + window + 1).min(tokens.len());
                for &u in &tokens[i + 1..end] {
                    if !words.contains(&u) || u == w {
                        continue;
                    }
                    let key = if w < u { (w, u) } else { (u, w) };
                    *pair_occurrences.entry(key).or_insert(0) += 1;
                }
            }
        }
        Self {
            window,
            word_occurrences,
            pair_occurrences,
            total_tokens,
        }
    }

    /// The window size used for counting.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Occurrences of a word.
    pub fn word_count(&self, w: WordId) -> u64 {
        self.word_occurrences.get(&w).copied().unwrap_or(0)
    }

    /// Co-occurrences of an unordered pair.
    pub fn pair_count(&self, a: WordId, b: WordId) -> u64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.pair_occurrences.get(&key).copied().unwrap_or(0)
    }

    /// Total tokens scanned (the normalizing constant for probabilities).
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Smoothed PMI of a pair in nats:
    /// `ln( (n(a,b)+ε) · N / (n(a) · n(b)) )`, with `ε = 1` additive
    /// smoothing on the pair count (the standard topic-coherence variant —
    /// without smoothing, topics with one unseen pair score −∞).
    ///
    /// Returns `None` if either word never occurs.
    pub fn pmi(&self, a: WordId, b: WordId) -> Option<f64> {
        let na = self.word_count(a);
        let nb = self.word_count(b);
        if na == 0 || nb == 0 || self.total_tokens == 0 {
            return None;
        }
        let nab = self.pair_count(a, b) as f64 + 1.0;
        Some((nab * self.total_tokens as f64 / (na as f64 * nb as f64)).ln())
    }

    /// Mean pairwise PMI over a word list (the per-topic coherence score of
    /// Figure 8(c)). Pairs with unseen words are skipped; returns `None` if
    /// no scorable pair exists.
    pub fn mean_pairwise_pmi(&self, words: &[WordId]) -> Option<f64> {
        let mut acc = 0.0;
        let mut n = 0usize;
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                if let Some(p) = self.pmi(words[i], words[j]) {
                    acc += p;
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(acc / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::tokenizer::Tokenizer;

    fn build(docs: &[&[&str]]) -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for (i, d) in docs.iter().enumerate() {
            b.add_tokens(format!("d{i}"), d);
        }
        b.build()
    }

    fn all_words(c: &Corpus) -> FxHashSet<WordId> {
        c.vocabulary().iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn adjacent_pair_counting() {
        let c = build(&[&["a", "b", "a", "b"]]);
        let counts = CooccurrenceCounts::count(&c, &all_words(&c), 1);
        let a = c.vocabulary().get("a").unwrap();
        let b = c.vocabulary().get("b").unwrap();
        assert_eq!(counts.word_count(a), 2);
        assert_eq!(counts.word_count(b), 2);
        // pairs: (0,1), (1,2), (2,3) all a-b.
        assert_eq!(counts.pair_count(a, b), 3);
        assert_eq!(counts.pair_count(b, a), 3, "pair counts are unordered");
    }

    #[test]
    fn window_extends_reach() {
        let c = build(&[&["a", "x", "b"]]);
        let words: FxHashSet<WordId> = ["a", "b"]
            .iter()
            .map(|w| c.vocabulary().get(w).unwrap())
            .collect();
        let w1 = CooccurrenceCounts::count(&c, &words, 1);
        let a = c.vocabulary().get("a").unwrap();
        let b = c.vocabulary().get("b").unwrap();
        assert_eq!(w1.pair_count(a, b), 0);
        let w2 = CooccurrenceCounts::count(&c, &words, 2);
        assert_eq!(w2.pair_count(a, b), 1);
    }

    #[test]
    fn pairs_do_not_cross_documents() {
        let c = build(&[&["a"], &["b"]]);
        let counts = CooccurrenceCounts::count(&c, &all_words(&c), 10);
        let a = c.vocabulary().get("a").unwrap();
        let b = c.vocabulary().get("b").unwrap();
        assert_eq!(counts.pair_count(a, b), 0);
    }

    #[test]
    fn pmi_rewards_cooccurring_words() {
        // "gas natural" always adjacent; "gas stock" never.
        let c = build(&[
            &["gas", "natural", "gas", "natural"],
            &["stock", "market"],
            &["gas", "natural"],
        ]);
        let counts = CooccurrenceCounts::count(&c, &all_words(&c), 2);
        let gas = c.vocabulary().get("gas").unwrap();
        let natural = c.vocabulary().get("natural").unwrap();
        let stock = c.vocabulary().get("stock").unwrap();
        let pmi_gn = counts.pmi(gas, natural).unwrap();
        let pmi_gs = counts.pmi(gas, stock).unwrap();
        assert!(pmi_gn > pmi_gs, "{pmi_gn} vs {pmi_gs}");
    }

    #[test]
    fn pmi_none_for_unseen_words() {
        let c = build(&[&["a", "b"]]);
        let counts = CooccurrenceCounts::count(&c, &all_words(&c), 1);
        assert!(counts.pmi(WordId::new(40), WordId::new(41)).is_none());
    }

    #[test]
    fn mean_pairwise_pmi_aggregates() {
        let c = build(&[&["a", "b", "c", "a", "b", "c"]]);
        let counts = CooccurrenceCounts::count(&c, &all_words(&c), 2);
        let ids: Vec<WordId> = ["a", "b", "c"]
            .iter()
            .map(|w| c.vocabulary().get(w).unwrap())
            .collect();
        assert!(counts.mean_pairwise_pmi(&ids).is_some());
        assert!(counts.mean_pairwise_pmi(&[]).is_none());
        assert!(counts.mean_pairwise_pmi(&[ids[0]]).is_none());
    }

    #[test]
    fn restricted_word_set_ignores_others() {
        let c = build(&[&["a", "z", "z", "z", "b"]]);
        let words: FxHashSet<WordId> = ["a", "b"]
            .iter()
            .map(|w| c.vocabulary().get(w).unwrap())
            .collect();
        let counts = CooccurrenceCounts::count(&c, &words, 4);
        let z = c.vocabulary().get("z").unwrap();
        assert_eq!(counts.word_count(z), 0);
        assert_eq!(counts.total_tokens(), 5);
    }
}
